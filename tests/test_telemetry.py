"""Tests for the telemetry layer: registry, event log, logging, status.

The overhead test is the contract the whole design leans on: with the
default no-op registry installed, instrumentation must add well under 2%
to a real election run.  It is asserted from first principles — count the
instrument calls a run makes, measure the no-op per-call cost in a tight
loop, and compare the product against the run's wall time — so the bound
holds on slow CI machines where a direct A/B timing would drown in noise.
"""

import json
import logging
import time

import pytest

from repro.cli import main
from repro.orchestrator import (
    FileTaskQueue,
    RunConfig,
    WorkerSummary,
    config_digest,
    default_code_version,
    run_sweep,
    run_worker,
)
from repro.orchestrator.net import CoordinatorServer, TaskBoard, fetch_status
from repro.orchestrator.pool import execute_config
from repro.telemetry import (
    EventLog,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    configure_logging,
    counter,
    get_event_log,
    get_logger,
    get_registry,
    quantile,
    summarize_ages,
    use_event_log,
    use_registry,
)

CONFIG = RunConfig(algorithm="dle", family="hexagon", size=2, seed=0)


def _digest(config):
    return config_digest(config, default_code_version())


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_gauge_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(4)
        registry.gauge("g").set(7)
        registry.gauge("g").dec(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"] == 5
        assert snapshot["gauges"]["g"] == 5

    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")

    def test_histogram_boundary_lands_in_its_bucket(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 99.0):
            hist.observe(value)
        buckets = dict((bound, count) for bound, count
                       in hist.snapshot()["buckets"][:-1])
        # A value equal to a bound counts in that bucket, not the next.
        assert buckets[1.0] == 2   # 0.5 and 1.0
        assert buckets[2.0] == 2   # 1.5 and 2.0
        assert buckets[5.0] == 1   # 5.0
        assert hist.snapshot()["buckets"][-1] == [None, 1]  # 99.0 overflows

    def test_histogram_min_max_sum(self):
        hist = Histogram("h", buckets=(1.0,))
        for value in (3.0, 0.25, 2.0):
            hist.observe(value)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["min"] == 0.25
        assert snapshot["max"] == 3.0
        assert snapshot["sum"] == pytest.approx(5.25)

    def test_histogram_quantile_interpolates_within_bucket(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for _ in range(99):
            hist.observe(0.5)
        hist.observe(5.0)
        # The median falls in the first bucket, which spans [min, 1.0]:
        # linear interpolation puts rank 50-of-99 at 0.5 + 0.5 * 50/99.
        assert hist.quantile(0.5) == pytest.approx(0.5 + 0.5 * 50 / 99)
        # The top quantile would interpolate to the second bucket's upper
        # bound (10.0), but no observation exceeded 5.0 — clamp to max.
        assert hist.quantile(1.0) == 5.0

    def test_histogram_quantile_finite_buckets_linear(self):
        # 100 evenly-spread values per decade bucket: interpolated
        # quantiles should land close to the exact ones.
        hist = Histogram("h", buckets=(10.0, 20.0, 30.0, 40.0))
        values = [0.4 * i for i in range(1, 101)]  # 0.4 .. 40.0
        for value in values:
            hist.observe(value)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert hist.quantile(q) == pytest.approx(40.0 * q, abs=0.5)
        assert hist.quantile(0.0) == pytest.approx(0.4, abs=0.5)
        assert hist.quantile(1.0) == 40.0

    def test_histogram_quantile_overflow_and_empty(self):
        hist = Histogram("h", buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0  # no observations yet
        hist.observe(0.5)
        hist.observe(100.0)  # overflow bucket
        assert hist.quantile(1.0) == 100.0  # overflow answers observed max
        assert hist.quantile(0.0) >= 0.5  # never below observed min

    def test_quantile_exact_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == pytest.approx(2.5)

    def test_summarize_ages_empty_and_filled(self):
        assert summarize_ages([]) == {"count": 0, "p50": 0.0, "p90": 0.0,
                                      "max": 0.0}
        summary = summarize_ages([1.0, 3.0])
        assert summary["count"] == 2
        assert summary["max"] == 3.0

    def test_default_registry_is_disabled_noop(self):
        registry = get_registry()
        assert not registry.enabled
        registry.counter("whatever").inc()
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}

    def test_use_registry_scopes_and_restores(self):
        real = MetricsRegistry()
        with use_registry(real):
            counter("scoped").inc()
            assert get_registry() is real
        assert not get_registry().enabled
        assert real.snapshot()["counters"]["scoped"] == 1

    def test_null_registry_shares_one_instrument(self):
        null = NullRegistry()
        assert null.counter("a") is null.histogram("b")
        assert null.counter("a").value == 0


# ---------------------------------------------------------------------------
# Overhead: the no-op default must be effectively free
# ---------------------------------------------------------------------------

class CountingRegistry(MetricsRegistry):
    """Counts instrument lookups, the unit every instrumented site pays."""

    def __init__(self):
        super().__init__()
        self.lookups = 0

    def counter(self, name):
        self.lookups += 1
        return super().counter(name)

    def gauge(self, name):
        self.lookups += 1
        return super().gauge(name)

    def histogram(self, name, buckets=None):
        self.lookups += 1
        return super().histogram(name, buckets)


class TestOverhead:
    def test_disabled_telemetry_costs_under_two_percent(self):
        from repro.analysis.bench import calibrate
        from repro.orchestrator.pool import _shape_and_metrics

        config = RunConfig(algorithm="dle", family="hexagon", size=16,
                           seed=0)
        _shape_and_metrics(config.family, config.size, config.seed)  # warm

        counting = CountingRegistry()
        with use_registry(counting):
            started = time.perf_counter()
            execute_config(config)
            run_seconds = time.perf_counter() - started

        # Instrumentation is at run/op granularity, never per activation:
        # a whole election run makes only a handful of instrument calls.
        assert 0 < counting.lookups < 1000

        # Per-call cost of the *disabled* path every site takes by default.
        loops = 100_000
        null_counter = get_registry().counter("overhead")
        started = time.perf_counter()
        for _ in range(loops):
            null_counter.inc()
        per_call = (time.perf_counter() - started) / loops

        overhead = counting.lookups * 2 * per_call  # lookup + method call
        assert overhead < 0.02 * run_seconds, (
            f"no-op telemetry overhead {overhead * 1e6:.1f}us vs "
            f"{run_seconds:.2f}s run")
        # Cross-check against the bench calibration workload: one no-op
        # call must be vanishingly small next to the interpreter baseline.
        assert per_call < calibrate(repeats=1)


# ---------------------------------------------------------------------------
# Event log
# ---------------------------------------------------------------------------

class TestEventLog:
    def test_lines_parse_with_context_and_monotonic_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path, context={"run": "r1"}) as log:
            for index in range(5):
                log.emit("tick", index=index)
            assert log.lines == 5
        entries = [json.loads(line) for line in
                   path.read_text().splitlines()]
        assert [entry["index"] for entry in entries] == list(range(5))
        assert all(entry["run"] == "r1" for entry in entries)
        assert all(entry["event"] == "tick" for entry in entries)
        monos = [entry["mono"] for entry in entries]
        assert monos == sorted(monos)

    def test_span_emits_begin_end_with_duration(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with log.span("work", job=3):
            time.sleep(0.01)
        with pytest.raises(ValueError):
            with log.span("boom"):
                raise ValueError("no")
        log.close()
        entries = [json.loads(line) for line in
                   (tmp_path / "events.jsonl").read_text().splitlines()]
        events = [entry["event"] for entry in entries]
        assert events == ["work.begin", "work.end", "boom.begin", "boom.end"]
        assert entries[1]["ok"] is True
        assert entries[1]["dur"] >= 0.01
        assert entries[1]["job"] == 3
        assert entries[3]["ok"] is False

    def test_default_event_log_is_noop_and_scoped_install(self, tmp_path):
        assert not get_event_log().enabled
        log = EventLog(tmp_path / "e.jsonl")
        with use_event_log(log):
            assert get_event_log() is log
            get_event_log().emit("x")
        assert not get_event_log().enabled
        assert log.lines == 1

    def test_emit_after_close_is_noop(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        log.close()
        log.emit("late")  # must not raise
        assert (tmp_path / "e.jsonl").read_text() == ""


# ---------------------------------------------------------------------------
# Logging
# ---------------------------------------------------------------------------

class TestLogging:
    def test_configure_is_idempotent(self):
        root = configure_logging("info")
        handlers_before = list(root.handlers)
        assert configure_logging("debug").handlers == handlers_before
        assert root.level == logging.DEBUG
        configure_logging("info")

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("chatty")

    def test_named_loggers_and_dynamic_stderr(self, capsys):
        configure_logging("info")
        assert get_logger("sweep").name == "repro.sweep"
        get_logger("sweep").info("hello from the sweep")
        assert "hello from the sweep" in capsys.readouterr().err

    def test_level_filters(self, capsys):
        configure_logging("error")
        get_logger("worker").info("invisible")
        assert "invisible" not in capsys.readouterr().err
        configure_logging("info")


# ---------------------------------------------------------------------------
# Sweep integration: metrics + events around run_sweep
# ---------------------------------------------------------------------------

class TestSweepTelemetry:
    def test_run_sweep_records_sources_and_cache_counters(self, tmp_path):
        registry = MetricsRegistry()
        with use_registry(registry):
            run_sweep([CONFIG], cache=str(tmp_path / "cache"))
            run_sweep([CONFIG], cache=str(tmp_path / "cache"))
        counters = registry.snapshot()["counters"]
        assert counters["sweep.executed"] == 1
        assert counters["sweep.cached"] == 1
        assert counters["cache.hits"] == 1
        assert counters["cache.misses"] >= 1
        assert counters["engine.sweep.runs"] == 1
        assert counters.get("ledger.appends", 0) == 0

    def test_run_sweep_emits_begin_config_end(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        with use_event_log(log):
            run_sweep([CONFIG])
        log.close()
        entries = [json.loads(line) for line in
                   (tmp_path / "events.jsonl").read_text().splitlines()]
        events = [entry["event"] for entry in entries]
        assert events[0] == "sweep.begin"
        assert events[-1] == "sweep.end"
        assert "sweep.config" in events
        config_entry = entries[events.index("sweep.config")]
        assert config_entry["ok"] is True
        assert config_entry["source"] == "executed"

    def test_cli_sweep_telemetry_dir_and_summary_metrics(self, tmp_path,
                                                         capsys):
        telemetry = tmp_path / "tel"
        summary_path = tmp_path / "summary.json"
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "--quiet",
                     "--telemetry", str(telemetry),
                     "--summary-json", str(summary_path)])
        assert code == 0
        assert (telemetry / "events.jsonl").is_file()
        metrics = json.loads((telemetry / "metrics.json").read_text())
        assert metrics["kind"] == "sweep-metrics"
        assert metrics["snapshot"]["counters"]["engine.sweep.runs"] == 1
        summary = json.loads(summary_path.read_text())
        block = summary["metrics"]
        assert set(block) >= {"cache", "retries", "reclaims", "rounds",
                              "counters"}
        assert block["rounds"]["sweep"] > 0
        assert block["cache"]["hit_rate"] == 0.0


# ---------------------------------------------------------------------------
# TaskBoard stats and the coordinator status op
# ---------------------------------------------------------------------------

class TestBoardStats:
    def test_stats_keeps_legacy_keys_and_adds_lease_ages(self):
        board = TaskBoard(lease_ttl=60.0)
        board.enqueue("000000-a", CONFIG.to_dict(), "a")
        board.enqueue("000001-b", CONFIG.to_dict(), "b")
        board.claim("w0", now=100.0)
        stats = board.stats(now=130.0)
        assert stats["pending"] == 1
        assert stats["leased"] == 1
        assert stats["done"] == 0
        assert stats["counters"]["enqueued"] == 2
        assert stats["counters"]["claims"] == 1
        assert stats["lease_ages"]["count"] == 1
        assert stats["lease_ages"]["max"] == pytest.approx(30.0)
        (lease,) = stats["leases"]
        assert lease["worker"] == "w0"
        assert lease["age"] == pytest.approx(30.0)

    def test_heartbeat_preserves_lease_age(self):
        board = TaskBoard(lease_ttl=60.0)
        board.enqueue("000000-a", CONFIG.to_dict(), "a")
        board.claim("w0", now=100.0)
        board.heartbeat("w0", "000000-a", now=150.0)
        stats = board.stats(now=160.0)
        assert stats["leases"][0]["age"] == pytest.approx(60.0)
        assert stats["counters"]["heartbeats"] == 1

    def test_budget_exhaustion_is_counted(self):
        board = TaskBoard(lease_ttl=10.0)
        board.enqueue("000000-a", CONFIG.to_dict(), "a", max_attempts=1)
        board.claim("w0", now=0.0)
        reclaimed = board.reclaim_stale(now=100.0)
        assert reclaimed == ["000000-a"]
        stats = board.stats(now=100.0)
        assert stats["counters"]["reclaims"] == 1
        assert stats["counters"]["exhausted"] == 1
        assert stats["done"] == 1  # terminal failed result published

    def test_throughput_counts_recent_completions(self):
        board = TaskBoard()
        board.enqueue("000000-a", CONFIG.to_dict(), "a")
        board.claim("w0", now=50.0)
        board.complete("w0", "000000-a", {"record": {"x": 1}})
        recent = board.stats(now=time.monotonic(), window=3600.0)
        assert recent["throughput"]["completed"] == 1
        assert recent["counters"]["completed"] == 1


class TestStatusCli:
    def test_status_requires_exactly_one_target(self, tmp_path, capsys):
        assert main(["status"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["status", "--coordinator", "h:1",
                     "--queue-dir", str(tmp_path)]) == 2

    def test_status_json_against_live_coordinator(self, capsys):
        with CoordinatorServer(port=0) as server:
            server.board.enqueue("000000-a", CONFIG.to_dict(), "a")
            server.board.enqueue("000001-b", CONFIG.to_dict(), "b")
            server.board.claim("w0")
            code = main(["status", "--coordinator", server.endpoint,
                         "--json"])
            assert code == 0
            document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "repro-status"
        assert document["source"] == "tcp"
        assert document["stop"] is False
        board = document["board"]
        assert board["pending"] == 1
        assert board["leased"] == 1
        assert board["counters"]["claims"] == 1
        assert board["lease_ages"]["count"] == 1
        assert board["leases"][0]["worker"] == "w0"
        assert "throughput" in board
        assert document["workers"] == []

    def test_fetch_status_respects_secret(self):
        from repro.orchestrator.net import HandshakeError

        with CoordinatorServer(port=0, secret="s3cret") as server:
            status = fetch_status(server.endpoint, secret="s3cret")
            assert status["board"]["pending"] == 0
            with pytest.raises(HandshakeError):
                fetch_status(server.endpoint, secret="wrong")

    def test_status_json_against_queue_dir(self, tmp_path, capsys):
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=60.0)
        queue.ensure_layout()
        queue.enqueue("000000-" + _digest(CONFIG), CONFIG.to_dict(),
                      _digest(CONFIG))
        queue.enqueue("000001-" + _digest(CONFIG), CONFIG.to_dict() | {},
                      _digest(CONFIG))
        claimed = queue.claim("w7")
        assert claimed is not None
        code = main(["status", "--queue-dir", str(tmp_path / "q"), "--json"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["source"] == "queue"
        assert document["board"]["pending"] == 1
        assert document["board"]["leased"] == 1
        assert document["board"]["leases"][0]["worker"] == "w7"
        assert document["board"]["lease_ages"]["count"] == 1

    def test_status_unreachable_coordinator_exits_nonzero(self, capsys):
        assert main(["status", "--coordinator", "127.0.0.1:1"]) == 1
        assert "status:" in capsys.readouterr().err

    def test_queue_transport_publishes_status_file(self, tmp_path):
        from repro.orchestrator import QueueTransport

        queue_dir = tmp_path / "q"
        queue = FileTaskQueue(queue_dir)
        queue.ensure_layout()
        transport = QueueTransport(queue_dir, poll=0.02, timeout=10.0)
        items = [(0, CONFIG, _digest(CONFIG))]

        import threading
        worker = threading.Thread(
            target=run_worker,
            args=(queue_dir,),
            kwargs={"poll": 0.02, "max_tasks": 1},
            daemon=True)
        worker.start()
        results = list(transport.run(items))
        worker.join(timeout=10)
        assert len(results) == 1
        status = json.loads((queue_dir / "status.json").read_text())
        assert status["kind"] == "queue-status"
        assert status["coordinator"]["enqueued"] == 1
        assert status["coordinator"]["outstanding"] == 0


# ---------------------------------------------------------------------------
# Worker summaries
# ---------------------------------------------------------------------------

class TestWorkerSummary:
    def test_compares_equal_to_processed_count(self):
        summary = WorkerSummary("w")
        summary.processed = 3
        assert summary == 3
        assert int(summary) == 3
        assert summary != 2

    def test_describe_mentions_outcomes(self):
        summary = WorkerSummary("w1")
        summary.processed = 2
        summary.done = 1
        summary.failed = 1
        summary.heartbeats = 5
        text = summary.describe()
        assert "2 task(s)" in text
        assert "1 ok" in text
        assert "1 failed" in text
        assert "5 heartbeat(s)" in text

    def test_queue_worker_returns_summary(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        queue.enqueue("000000-" + _digest(CONFIG), CONFIG.to_dict(),
                      _digest(CONFIG))
        summary = run_worker(tmp_path / "q", poll=0.02, max_tasks=1)
        assert summary == 1
        assert summary.done == 1
        assert summary.failed == 0
        assert summary.last_task_failed is False

    def test_worker_cli_logs_summary_and_exits_nonzero_on_failure(
            self, tmp_path, capsys):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        bad = {"algorithm": "no-such-algorithm", "family": "hexagon",
               "size": 2, "seed": 0}
        queue.enqueue("000000-bad", bad, "bad", max_attempts=1)
        code = main(["worker", str(tmp_path / "q"),
                     "--poll", "0.02", "--max-idle", "0.2"])
        err = capsys.readouterr().err
        assert code == 1
        assert "exiting after 1 task(s)" in err
        assert "1 failed" in err

    def test_worker_cli_success_exits_zero_with_summary(self, tmp_path,
                                                        capsys):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        queue.enqueue("000000-" + _digest(CONFIG), CONFIG.to_dict(),
                      _digest(CONFIG))
        code = main(["worker", str(tmp_path / "q"),
                     "--poll", "0.02", "--max-idle", "0.2"])
        err = capsys.readouterr().err
        assert code == 0
        assert "exiting after 1 task(s)" in err
        assert "1 ok" in err
        assert "heartbeat(s) sent" in err
