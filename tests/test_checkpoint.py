"""Checkpoint/resume: a run continued from a checkpoint file must be
bit-identical to the uninterrupted run — same per-round traces, same
round/move counts, same ExperimentRecord — across algorithms, shapes,
seeds and both activation engines.

The preemption idiom used throughout: ``on_checkpoint`` raises ``Kill``
after the first save, simulating a SIGKILL at an arbitrary round; a
fresh context pointed at the same file then resumes.
"""

import json
import random

import pytest

from repro.amoebot.scheduler import (
    _UniformKeyStream,
    make_scheduler,
    run_algorithm,
)
from repro.amoebot.system import ParticleSystem
from repro.core.dle import DLEAlgorithm
from repro.grid.generators import make_shape
from repro.io import records_to_dicts
from repro.session import Session
from repro.state import (
    CHECKPOINT_VERSION,
    CheckpointContext,
    CheckpointError,
    decode_rng,
    encode_rng,
    read_checkpoint,
    run_checkpointed_stage,
    write_checkpoint,
)


class Kill(Exception):
    """Simulated SIGKILL raised from the on_checkpoint callback."""


def _bomb(counter=None):
    """An on_checkpoint callback that raises Kill on its first firing."""

    def on_checkpoint(rounds, path):
        raise Kill(f"killed at round {rounds}")

    return on_checkpoint


# ---------------------------------------------------------------------------
# RNG stream round-trips
# ---------------------------------------------------------------------------

class TestRngRoundTrip:
    def test_stdlib_rng_roundtrips_bit_identically(self):
        rng = random.Random(1234)
        [rng.random() for _ in range(137)]  # advance mid-stream
        document = json.loads(json.dumps(encode_rng(rng)))
        clone = decode_rng(document)
        assert [clone.random() for _ in range(100)] == \
               [rng.random() for _ in range(100)]

    def test_stdlib_rng_roundtrips_gauss_carry(self):
        rng = random.Random(7)
        rng.gauss(0, 1)  # leaves a cached second variate in gauss_next
        clone = decode_rng(json.loads(json.dumps(encode_rng(rng))))
        assert [clone.gauss(0, 1) for _ in range(10)] == \
               [rng.gauss(0, 1) for _ in range(10)]

    def test_decode_rejects_garbage(self):
        with pytest.raises(CheckpointError):
            decode_rng({"state": "nope"})

    def test_key_stream_roundtrips_mid_stream(self):
        # The bulk key stream (numpy MT19937 transplant when available,
        # stdlib otherwise) must restore mid-stream from its canonical
        # {"key", "pos"} form and continue bit-identically.
        stream = _UniformKeyStream(random.Random(99))
        stream.draw(501)  # advance past a twist boundary
        state = json.loads(json.dumps(stream.getstate()))
        assert set(state) == {"key", "pos"}
        assert len(state["key"]) == 624
        clone = _UniformKeyStream(random.Random(0))
        clone.setstate(state)
        assert clone.draw(400) == stream.draw(400)

    def test_key_stream_matches_stdlib_after_restore(self):
        # Restoring the canonical form must keep the stream equal to the
        # plain rng.random() sequence from the same logical position.
        reference = random.Random(5)
        stream = _UniformKeyStream(random.Random(5))
        stream.draw(100)
        [reference.random() for _ in range(100)]
        clone = _UniformKeyStream(random.Random(1))
        clone.setstate(json.loads(json.dumps(stream.getstate())))
        assert clone.draw(50) == [reference.random() for _ in range(50)]


# ---------------------------------------------------------------------------
# Scheduler-level restore ≡ continue (trace granularity)
# ---------------------------------------------------------------------------

def _final(system):
    return sorted((p.particle_id, dict(p.memory)) for p in system.particles())


@pytest.mark.parametrize("engine", ["sweep", "event"])
@pytest.mark.parametrize("order", ["random", "round_robin", "reversed"])
def test_scheduler_resume_continues_trace(tmp_path, engine, order):
    shape = make_shape("holey", 3, seed=2)
    seed = 2
    path = tmp_path / "ck.json"
    config = {"algorithm": "dle", "seed": seed}

    # Reference: one uninterrupted run with a full per-round trace.
    reference_system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    reference_trace = []
    reference = make_scheduler(engine, order=order, seed=seed).run(
        DLEAlgorithm(), reference_system, max_rounds=5000,
        round_hook=lambda r, s: reference_trace.append((r, s.snapshot())))
    assert reference.terminated

    # Interrupted run: killed at the first checkpoint save.
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    context = CheckpointContext(path, 3, config, on_checkpoint=_bomb())
    with pytest.raises(Kill):
        run_checkpointed_stage(context, "dle", DLEAlgorithm(), system,
                               make_scheduler(engine, order=order, seed=seed),
                               5000)
    assert path.exists()

    # Resume into completely fresh objects; trace only the continuation.
    resumed_trace = []
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    context = CheckpointContext(path, 3, config)
    assert context.resuming
    result = run_checkpointed_stage(
        context, "dle", DLEAlgorithm(), system,
        make_scheduler(engine, order=order, seed=seed), 5000,
        round_hook=lambda r, s: resumed_trace.append((r, s.snapshot())))

    assert context.resumed_round == 3
    assert result.rounds == reference.rounds
    assert result.moves == reference.moves
    assert result.terminated
    assert resumed_trace == reference_trace[context.resumed_round:]
    assert _final(system) == _final(reference_system)


def test_checkpoint_document_is_json_and_versioned(tmp_path):
    shape = make_shape("hexagon", 3, seed=0)
    path = tmp_path / "ck.json"
    system = ParticleSystem.from_shape(shape, orientation_seed=0)
    context = CheckpointContext(path, 2, {"algorithm": "dle"},
                                on_checkpoint=_bomb())
    with pytest.raises(Kill):
        run_checkpointed_stage(context, "dle", DLEAlgorithm(), system,
                               make_scheduler("event", seed=0), 5000)
    document = json.loads(path.read_text())  # plain JSON on disk
    assert document["kind"] == "repro-checkpoint"
    assert document["version"] == CHECKPOINT_VERSION
    assert document["stage"] == "dle"
    assert document["every"] == 2
    assert document["scheduler"]["engine"] == "event"
    assert document["scheduler"]["rounds"] == 2
    assert "key" in document["scheduler"]["key_stream"]
    assert document["algorithm"]["name"]
    assert document["system"]["particles"]


def test_resume_rejects_scheduler_mismatch(tmp_path):
    shape = make_shape("hexagon", 3, seed=0)
    path = tmp_path / "ck.json"
    config = {"algorithm": "dle"}
    system = ParticleSystem.from_shape(shape, orientation_seed=0)
    context = CheckpointContext(path, 2, config, on_checkpoint=_bomb())
    with pytest.raises(Kill):
        run_checkpointed_stage(context, "dle", DLEAlgorithm(), system,
                               make_scheduler("sweep", order="random", seed=0),
                               5000)
    for other in [make_scheduler("event", order="random", seed=0),
                  make_scheduler("sweep", order="reversed", seed=0),
                  make_scheduler("sweep", order="random", seed=1)]:
        system = ParticleSystem.from_shape(shape, orientation_seed=0)
        with pytest.raises(ValueError, match="written by scheduler"):
            run_checkpointed_stage(CheckpointContext(path, 2, config), "dle",
                                   DLEAlgorithm(), system, other, 5000)


def test_checkpointing_rejects_custom_order_policy():
    def custom(round_index, ids, rng):
        return list(ids)

    shape = make_shape("hexagon", 2, seed=0)
    system = ParticleSystem.from_shape(shape, orientation_seed=0)
    scheduler = make_scheduler("sweep", order=custom, seed=0)
    with pytest.raises(ValueError, match="built-in activation order"):
        scheduler.run(DLEAlgorithm(), system, max_rounds=10,
                      checkpoint_every=1, checkpoint_sink=lambda doc: None)


def test_foreign_config_checkpoint_is_ignored(tmp_path):
    path = tmp_path / "ck.json"
    write_checkpoint(path, {"config": {"algorithm": "other"},
                            "stage": "dle", "scheduler": {}})
    context = CheckpointContext(path, 2, {"algorithm": "dle"})
    assert not context.resuming
    assert context.stage_document("dle") is None


def test_future_version_checkpoint_raises(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"kind": "repro-checkpoint",
                                "version": CHECKPOINT_VERSION + 1}))
    with pytest.raises(CheckpointError, match="version"):
        read_checkpoint(path)


def test_non_checkpoint_json_reads_as_none(tmp_path):
    path = tmp_path / "ck.json"
    path.write_text(json.dumps({"kind": "something-else"}))
    assert read_checkpoint(path) is None
    assert read_checkpoint(tmp_path / "missing.json") is None


# ---------------------------------------------------------------------------
# Session-level restore ≡ continue (record granularity), fuzzed over configs
# ---------------------------------------------------------------------------

# ≥10 (algorithm, family, size, seed, engine) configurations, covering both
# engines, every checkpointable pipeline and the one-shot OBD prologue.
FUZZ_CONFIGS = [
    ("dle", "hexagon", 3, 0, "sweep"),
    ("dle", "hexagon", 3, 1, "event"),
    ("dle", "holey", 3, 2, "sweep"),
    ("dle", "holey", 4, 0, "event"),
    ("dle", "blob", 3, 3, "event"),
    ("dle+collect", "holey", 3, 1, "sweep"),
    ("dle+collect", "hexagon", 3, 0, "event"),
    ("collect", "holey", 3, 0, "sweep"),
    ("erosion", "hexagon", 3, 0, "sweep"),
    ("erosion", "hexagon", 3, 1, "event"),
    ("obd+dle+collect", "holey", 3, 0, "event"),
    ("obd+dle+collect", "hexagon", 3, 1, "sweep"),
]


@pytest.mark.parametrize("algorithm,family,size,seed,engine", FUZZ_CONFIGS)
def test_session_resume_equals_uninterrupted(tmp_path, algorithm, family,
                                             size, seed, engine):
    config = {"algorithm": algorithm, "family": family, "size": size,
              "seed": seed, "scheduler": "random", "engine": engine}

    reference = Session.run(dict(config))
    assert reference.resumed_round is None

    with pytest.raises(Kill):
        Session.run(dict(config), checkpoint_every=2,
                    checkpoint_dir=tmp_path, on_checkpoint=_bomb())
    files = list(tmp_path.glob("checkpoint-*.json"))
    assert len(files) == 1  # the interrupted run left exactly one file

    resumed = Session.run(dict(config), checkpoint_every=2,
                          checkpoint_dir=tmp_path)
    assert resumed.resumed_round is not None
    assert resumed.resumed_from == str(files[0])
    assert records_to_dicts([resumed.record]) == \
           records_to_dicts([reference.record])
    assert not files[0].exists()  # discarded after the successful finish


def test_session_resume_explicit_path(tmp_path):
    config = {"algorithm": "dle", "family": "holey", "size": 3, "seed": 1,
              "scheduler": "random", "engine": "event"}
    reference = Session.run(dict(config))
    with pytest.raises(Kill):
        Session.run(dict(config), checkpoint_every=3,
                    checkpoint_dir=tmp_path, on_checkpoint=_bomb())
    (path,) = tmp_path.glob("checkpoint-*.json")

    saves = []
    resumed = Session.resume(path,
                             on_checkpoint=lambda r, p: saves.append(r))
    assert resumed.config.to_dict() == config
    assert resumed.resumed_round == 3
    # Session.resume keeps the interrupted run's cadence by default.
    assert resumed.checkpoint_every == 3
    assert saves  # kept checkpointing while it ran
    assert records_to_dicts([resumed.record]) == \
           records_to_dicts([reference.record])


def test_session_resume_missing_file_raises(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint"):
        Session.resume(tmp_path / "missing.json")


def test_session_resume_config_free_document_raises(tmp_path):
    path = tmp_path / "ck.json"
    write_checkpoint(path, {"stage": "dle", "scheduler": {}})
    with pytest.raises(CheckpointError, match="no run config"):
        Session.resume(path)


def test_session_without_checkpointing_has_no_side_effects(tmp_path):
    session = Session.run({"algorithm": "dle", "family": "hexagon",
                           "size": 2, "seed": 0})
    assert session.checkpoint_path is None
    assert session.record.succeeded
    assert list(tmp_path.iterdir()) == []


def test_full_pipeline_skips_completed_obd_on_resume(tmp_path):
    # A kill during the DLE stage must not re-run OBD on resume: its
    # summary travels in the checkpoint's completed-stages block.
    config = {"algorithm": "obd+dle+collect", "family": "holey", "size": 3,
              "seed": 0, "scheduler": "random", "engine": "sweep"}
    reference = Session.run(dict(config))
    with pytest.raises(Kill):
        Session.run(dict(config), checkpoint_every=2,
                    checkpoint_dir=tmp_path, on_checkpoint=_bomb())
    (path,) = tmp_path.glob("checkpoint-*.json")
    document = json.loads(path.read_text())
    assert document["completed"]["obd"]["rounds"] > 0

    resumed = Session.run(dict(config), checkpoint_every=2,
                          checkpoint_dir=tmp_path)
    assert resumed.record.details["obd_rounds"] == \
           reference.record.details["obd_rounds"]
    assert records_to_dicts([resumed.record]) == \
           records_to_dicts([reference.record])


# ---------------------------------------------------------------------------
# Deprecated keyword shims
# ---------------------------------------------------------------------------

class TestKeywordShims:
    def test_run_algorithm_scheduler_order_warns_and_works(self):
        shape = make_shape("hexagon", 2, seed=0)
        system = ParticleSystem.from_shape(shape, orientation_seed=0)
        with pytest.warns(DeprecationWarning, match="order="):
            old = run_algorithm(DLEAlgorithm(), system,
                                scheduler_order="reversed", seed=0)
        system = ParticleSystem.from_shape(shape, orientation_seed=0)
        new = run_algorithm(DLEAlgorithm(), system, order="reversed", seed=0)
        assert (old.rounds, old.moves) == (new.rounds, new.moves)

    def test_make_scheduler_rng_warns_and_seeds(self):
        with pytest.warns(DeprecationWarning, match="seed="):
            scheduler = make_scheduler("sweep", rng=42)
        assert scheduler.seed == 42
