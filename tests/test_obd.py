"""Tests for the outer-boundary-detection primitive (OBD)."""

import pytest

from repro.amoebot.system import ParticleSystem
from repro.core.dle import DLEAlgorithm, verify_unique_leader
from repro.core.obd import (
    BoundaryCompetition,
    OBD_OUTER_MEMORY_KEY,
    OuterBoundaryDetection,
    Segment,
)
from repro.amoebot.scheduler import Scheduler
from repro.grid.coords import NUM_DIRECTIONS
from repro.grid.generators import (
    annulus,
    comb,
    hexagon,
    hexagon_with_holes,
    line_shape,
    parallelogram,
    random_blob,
    random_holey_blob,
    spiral,
)
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

SHAPES = {
    "hexagon2": hexagon(2),
    "hexagon4": hexagon(4),
    "line7": line_shape(7),
    "comb": comb(4, 3),
    "parallelogram": parallelogram(5, 3),
    "spiral": spiral(4, 3),
    "annulus": annulus(5, 2),
    "holey_hexagon": hexagon_with_holes(7),
    "blob": random_blob(60, seed=8),
    "holey_blob": random_holey_blob(90, seed=4),
    "pair": Shape([(0, 0), (1, 0)]),
}


class TestSegment:
    def test_comparison_prefers_shorter(self):
        short = Segment(0, (3,))
        long = Segment(1, (0, 0))
        assert short.comparison_key() < long.comparison_key()

    def test_comparison_lexicographic_on_ties(self):
        a = Segment(0, (0, 1))
        b = Segment(2, (1, 0))
        assert a.comparison_key() < b.comparison_key()

    def test_size_and_total(self):
        seg = Segment(0, (1, -1, 2))
        assert seg.size == 3
        assert seg.total == 2


class TestBoundaryCompetition:
    def test_single_vnode_ring(self):
        result = BoundaryCompetition([6]).run()
        assert result.total_count == 6
        assert result.is_outer
        assert result.num_final_segments == 1

    def test_total_count_preserved(self):
        counts = [1, 0, -1, 2, 1, 0, 3, 0]
        result = BoundaryCompetition(counts).run()
        assert result.total_count == sum(counts)
        assert sum(s.total for s in result.final_segments) == sum(counts)

    def test_all_vnodes_covered_by_final_segments(self):
        counts = [1, 1, 1, 1, 1, 1]
        result = BoundaryCompetition(counts).run()
        assert sum(s.size for s in result.final_segments) == len(counts)

    def test_symmetric_ring_keeps_symmetric_segments(self):
        # A perfectly symmetric hexagon boundary: counts 1,0,1,0,... can
        # stabilise with up to 6 equal segments (Observation 33).
        counts = [1, 0, 0] * 6
        result = BoundaryCompetition(counts).run()
        assert result.num_final_segments in (1, 2, 3, 6)
        labels = {s.counts for s in result.final_segments}
        assert len(labels) == 1

    def test_inner_ring_detected_as_not_outer(self):
        counts = [-1, 0, -1, 0, -1, 0, -1, 0, -1, 0, -1, 0]
        result = BoundaryCompetition(counts).run()
        assert result.total_count == -6
        assert not result.is_outer

    def test_rounds_positive_and_bounded(self):
        counts = [1, 0, -1] * 10
        result = BoundaryCompetition(counts).run()
        assert result.rounds > 0
        # Generously linear: c * L with c far below the paper's constants.
        assert result.rounds <= 60 * len(counts)

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            BoundaryCompetition([])

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_real_rings_stabilise_to_divisor_of_six(self, name):
        shape = SHAPES[name]
        ring = shape.outer_ring()
        result = BoundaryCompetition([v.count for v in ring.vnodes]).run()
        assert result.is_outer
        assert result.num_final_segments in (1, 2, 3, 6)


class TestOuterBoundaryDetection:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_detects_geometric_outer_boundary(self, name):
        shape = SHAPES[name]
        system = ParticleSystem.from_shape(shape, orientation_seed=3)
        result = OuterBoundaryDetection(system).run()
        assert result.outer_boundary_points == set(shape.outer_boundary)

    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_port_flags_match_ground_truth(self, name):
        shape = SHAPES[name]
        system = ParticleSystem.from_shape(shape, orientation_seed=5)
        OuterBoundaryDetection(system).run()
        for particle in system.particles():
            flags = particle[OBD_OUTER_MEMORY_KEY]
            assert len(flags) == NUM_DIRECTIONS
            for port in range(NUM_DIRECTIONS):
                point = particle.head_neighbor(port)
                expected = shape.point_in_outer_face(point)
                assert flags[port] == expected, (
                    f"flag mismatch at {particle.head} port {port}"
                )

    def test_number_of_boundaries_reported(self):
        shape = SHAPES["holey_hexagon"]
        system = ParticleSystem.from_shape(shape)
        result = OuterBoundaryDetection(system).run()
        assert result.num_boundaries == 1 + len(shape.holes)

    def test_single_particle(self):
        system = ParticleSystem.from_shape(Shape([(0, 0)]))
        result = OuterBoundaryDetection(system).run()
        particle = system.particles()[0]
        assert particle[OBD_OUTER_MEMORY_KEY] == [True] * 6
        assert result.rounds >= 1

    @pytest.mark.parametrize("name", ["hexagon2", "hexagon4", "annulus",
                                      "holey_hexagon", "spiral", "comb",
                                      "blob", "line7"])
    def test_theorem41_rounds_linear_in_lout_plus_d(self, name):
        shape = SHAPES[name]
        metrics = compute_metrics(shape)
        system = ParticleSystem.from_shape(shape)
        result = OuterBoundaryDetection(system).run()
        # The constants in the charging scheme are documented in the module:
        # the outer ring has at most 3 L_out v-nodes, stabilisation is
        # charged 25 rounds per v-node (Lemma 35), the check and the outer
        # token add O(ring length), and the flood adds at most D + 1, so
        # 90 * (L_out + D) is a loose linear envelope over all of them.
        assert result.rounds <= 90 * (metrics.l_out + metrics.diameter) + 20

    def test_rounds_composition(self):
        system = ParticleSystem.from_shape(SHAPES["hexagon4"])
        result = OuterBoundaryDetection(system).run()
        assert result.rounds == (result.competition_rounds
                                 + result.announcement_rounds
                                 + result.flood_rounds)

    def test_flood_rounds_at_most_diameter_plus_one(self):
        shape = SHAPES["annulus"]
        metrics = compute_metrics(shape)
        system = ParticleSystem.from_shape(shape)
        result = OuterBoundaryDetection(system).run()
        assert result.flood_rounds <= metrics.diameter + 1

    def test_rejects_disconnected_configuration(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (5, 5)]))
        with pytest.raises(ValueError):
            OuterBoundaryDetection(system).run()

    def test_rejects_expanded_configuration(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0)]))
        system.expand(system.particle_at((1, 0)), (2, 0))
        with pytest.raises(ValueError):
            OuterBoundaryDetection(system)


class TestOBDFeedsDLE:
    @pytest.mark.parametrize("name", ["hexagon2", "annulus", "holey_blob",
                                      "spiral"])
    def test_dle_with_detected_boundary_elects_unique_leader(self, name):
        shape = SHAPES[name]
        system = ParticleSystem.from_shape(shape, orientation_seed=2)
        OuterBoundaryDetection(system).run()
        algorithm = DLEAlgorithm(outer_from_memory=True)
        result = Scheduler(order="random", seed=2).run(algorithm, system)
        assert result.terminated
        verify_unique_leader(system)

    def test_dle_without_obd_input_raises(self):
        system = ParticleSystem.from_shape(SHAPES["hexagon2"])
        algorithm = DLEAlgorithm(outer_from_memory=True)
        with pytest.raises(ValueError):
            algorithm.setup(system)

    @pytest.mark.parametrize("name", ["hexagon2", "annulus"])
    def test_detected_input_gives_same_rounds_as_oracle_input(self, name):
        # The OBD output is exactly the oracle boundary information, so the
        # subsequent DLE run must be identical round for round.
        shape = SHAPES[name]
        oracle_system = ParticleSystem.from_shape(shape, orientation_seed=9)
        oracle_result = Scheduler(order="round_robin").run(
            DLEAlgorithm(), oracle_system)

        detected_system = ParticleSystem.from_shape(shape, orientation_seed=9)
        OuterBoundaryDetection(detected_system).run()
        detected_result = Scheduler(order="round_robin").run(
            DLEAlgorithm(outer_from_memory=True), detected_system)

        assert oracle_result.rounds == detected_result.rounds
        assert (verify_unique_leader(oracle_system).head
                == verify_unique_leader(detected_system).head)
