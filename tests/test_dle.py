"""Tests for Algorithm DLE: correctness, invariants and round bounds.

The invariants checked here are the ones the paper's analysis establishes:

* Theorem 12  — DLE elects exactly one leader, everyone else a follower;
* Lemma 11    — the eligible set stays simply connected and non-empty, its
  boundary points stay occupied, the ``eligible`` flags stay consistent, and
  expanded particles have their head inside / tail outside the eligible set;
* Theorem 18  — termination within ``O(D_A)`` rounds (the proof's explicit
  constant gives ``10 * D_A + O(1)``);
* Lemma 19    — "breadcrumbs": at termination there is a contracted particle
  at every grid distance up to ``eps_G(l)`` from the leader, and none beyond.
"""

import pytest

from repro.amoebot.algorithm import STATUS_FOLLOWER, STATUS_KEY, STATUS_LEADER
from repro.amoebot.scheduler import Scheduler
from repro.amoebot.system import ParticleSystem
from repro.core.dle import DLEAlgorithm, LeaderElectionError, verify_unique_leader
from repro.grid.coords import grid_distance
from repro.grid.generators import (
    annulus,
    comb,
    hexagon,
    hexagon_with_holes,
    line_shape,
    parallelogram,
    random_blob,
    random_holey_blob,
    spiral,
)
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

SHAPES = {
    "single": Shape([(0, 0)]),
    "pair": Shape([(0, 0), (1, 0)]),
    "hexagon2": hexagon(2),
    "hexagon4": hexagon(4),
    "line9": line_shape(9),
    "parallelogram": parallelogram(5, 3),
    "comb": comb(4, 3),
    "spiral": spiral(4, 3),
    "blob": random_blob(70, seed=3),
    "holey_hexagon": hexagon_with_holes(7),
    "annulus": annulus(5, 2),
    "punctured": hexagon(3).without((0, 0)),
    "holey_blob": random_holey_blob(90, seed=4),
}


def run_dle(shape, order="random", seed=0, max_rounds=100_000):
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    algorithm = DLEAlgorithm()
    result = Scheduler(order=order, seed=seed).run(algorithm, system,
                                                   max_rounds=max_rounds)
    return system, algorithm, result


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_unique_leader_on_every_shape(self, name):
        system, algorithm, result = run_dle(SHAPES[name], seed=1)
        assert result.terminated
        leader = verify_unique_leader(system)
        assert leader.get(STATUS_KEY) == STATUS_LEADER

    @pytest.mark.parametrize("order", ["round_robin", "random", "reversed"])
    def test_unique_leader_under_different_schedulers(self, order):
        system, _, result = run_dle(SHAPES["holey_hexagon"], order=order, seed=2)
        assert result.terminated
        verify_unique_leader(system)

    @pytest.mark.parametrize("seed", range(5))
    def test_unique_leader_across_seeds(self, seed):
        system, _, result = run_dle(SHAPES["annulus"], seed=seed)
        assert result.terminated
        verify_unique_leader(system)

    def test_all_particles_contracted_at_termination(self):
        system, _, _ = run_dle(SHAPES["hexagon2"], seed=0)
        assert system.all_contracted()

    def test_single_particle_becomes_leader_immediately(self):
        system, _, result = run_dle(SHAPES["single"])
        leader = verify_unique_leader(system)
        assert result.rounds <= 2
        assert leader.head == (0, 0)

    def test_leader_point_recorded_by_instrumentation(self):
        system, algorithm, _ = run_dle(SHAPES["hexagon2"], seed=5)
        leader = verify_unique_leader(system)
        assert algorithm.leader_point is not None
        assert leader.occupies(algorithm.leader_point)

    def test_eligible_set_ends_with_single_point(self):
        _, algorithm, _ = run_dle(SHAPES["blob"], seed=1)
        assert algorithm.eligible_set_size() == 1

    def test_erosion_count_equals_area_minus_one(self):
        shape = SHAPES["annulus"]
        _, algorithm, _ = run_dle(shape, seed=2)
        assert algorithm.erosions == len(shape.area_points) - 1

    def test_verify_unique_leader_rejects_no_leader(self):
        system = ParticleSystem.from_shape(hexagon(1))
        with pytest.raises(LeaderElectionError):
            verify_unique_leader(system)

    def test_requires_connected_configuration(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (5, 5)]))
        with pytest.raises(ValueError):
            DLEAlgorithm().setup(system)

    def test_requires_contracted_configuration(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0)]))
        particle = system.particle_at((1, 0))
        system.expand(particle, (2, 0))
        with pytest.raises(ValueError):
            DLEAlgorithm().setup(system)


class TestRoundComplexity:
    @pytest.mark.parametrize("name", ["hexagon2", "hexagon4", "line9",
                                      "holey_hexagon", "annulus", "blob",
                                      "spiral", "comb"])
    def test_theorem18_linear_in_area_diameter(self, name):
        shape = SHAPES[name]
        metrics = compute_metrics(shape)
        _, _, result = run_dle(shape, seed=3)
        assert result.terminated
        # Lemma 17 / Theorem 18: every point leaves S_e within 10 D_A + O(1)
        # rounds; allow a small additive slack for the final leader step.
        assert result.rounds <= 10 * metrics.area_diameter + 6

    def test_annulus_faster_than_shape_diameter_bound_suggests(self):
        # On thin annuli D_A << D; DLE's rounds track D_A, not D.
        shape = annulus(7, 5)
        metrics = compute_metrics(shape)
        _, _, result = run_dle(shape, seed=1)
        assert metrics.area_diameter < metrics.diameter
        assert result.rounds <= 10 * metrics.area_diameter + 6

    def test_rounds_grow_with_hexagon_radius(self):
        rounds = []
        for radius in (2, 4, 6):
            _, _, result = run_dle(hexagon(radius), seed=0)
            rounds.append(result.rounds)
        assert rounds[0] < rounds[1] < rounds[2]


class TestLemma11Invariants:
    """Execute DLE on small shapes while checking Lemma 11 after each round."""

    @staticmethod
    def check_invariants(algorithm, system):
        eligible = set(algorithm.eligible_points)
        assert eligible, "S_e must stay non-empty"
        eligible_shape = Shape(eligible)
        # (2) S_e is simply connected.
        assert eligible_shape.is_simply_connected()
        # (3) Boundary points of S_e are occupied.
        for point in eligible_shape.boundary_points:
            assert system.is_occupied(point)
        for particle in system.particles():
            # (1) Expanded particles: head in S_e, tail not in S_e.
            if particle.is_expanded:
                assert particle.head in eligible
                assert particle.tail not in eligible
            # (4) eligible flags are consistent (Definition 9).
            flags = particle.get("eligible")
            if flags is None:
                continue
            for port in range(6):
                point = particle.head_neighbor(port)
                assert flags[port] == (point in eligible), (
                    f"inconsistent flag at {particle.head} port {port}"
                )

    @pytest.mark.parametrize("name", ["hexagon2", "punctured", "annulus",
                                      "comb", "pair"])
    @pytest.mark.parametrize("order", ["round_robin", "random"])
    def test_invariants_hold_every_round(self, name, order):
        shape = SHAPES[name]
        system = ParticleSystem.from_shape(shape, orientation_seed=7)
        algorithm = DLEAlgorithm()
        scheduler = Scheduler(order=order, seed=7)
        scheduler.run(
            algorithm, system,
            round_hook=lambda r, s: self.check_invariants(algorithm, s),
        )
        verify_unique_leader(system)


class TestLemma19Breadcrumbs:
    @pytest.mark.parametrize("name", ["hexagon4", "holey_hexagon", "annulus",
                                      "blob", "spiral", "line9"])
    def test_breadcrumbs_at_every_distance(self, name):
        shape = SHAPES[name]
        system, algorithm, _ = run_dle(shape, seed=11)
        leader = verify_unique_leader(system)
        l_point = leader.head
        # Eccentricity of l w.r.t. the *initial* shape under the grid metric.
        eps = max(grid_distance(l_point, p) for p in shape.points)
        occupied_distances = {
            grid_distance(l_point, particle.head)
            for particle in system.particles()
        }
        for distance in range(eps + 1):
            assert distance in occupied_distances, (
                f"no particle at grid distance {distance} from the leader"
            )
        assert max(occupied_distances) == eps

    def test_disconnection_actually_happens(self):
        # The algorithm's hallmark: particles may move away from their former
        # neighbours, so the system can pass through (and even terminate in)
        # a disconnected configuration.  Irregular holes trigger this: the
        # particles bordering a hole march into it and leave gaps behind.
        shape = SHAPES["holey_blob"]
        system = ParticleSystem.from_shape(shape, orientation_seed=1)
        algorithm = DLEAlgorithm()
        disconnected_seen = []
        Scheduler(order="random", seed=1).run(
            algorithm, system,
            round_hook=lambda r, s: disconnected_seen.append(not s.is_connected()),
        )
        verify_unique_leader(system)
        assert any(disconnected_seen), (
            "DLE never disconnected the system on the holey blob; "
            "the disconnecting behaviour should be exercised"
        )

    def test_solid_shapes_never_need_to_move(self):
        # On hole-free shapes every eligible point is occupied, so DLE reduces
        # to pure erosion: no particle ever expands.
        system = ParticleSystem.from_shape(hexagon(4), orientation_seed=3)
        algorithm = DLEAlgorithm()
        result = Scheduler(order="random", seed=3).run(algorithm, system)
        assert result.moves == 0
        verify_unique_leader(system)


class TestFollowerGeometry:
    def test_followers_do_not_move_after_deciding(self):
        # Once a particle becomes a follower it stays put: its point was
        # removed from S_e with no empty eligible neighbour left.
        shape = hexagon(3)
        system = ParticleSystem.from_shape(shape, orientation_seed=2)
        algorithm = DLEAlgorithm()
        positions = {}

        def hook(round_index, sys_):
            for particle in sys_.particles():
                if particle.get(STATUS_KEY) == STATUS_FOLLOWER:
                    pid = particle.particle_id
                    if pid in positions:
                        assert positions[pid] == particle.head
                    else:
                        positions[pid] = particle.head

        Scheduler(order="random", seed=2).run(algorithm, system, round_hook=hook)
        verify_unique_leader(system)

    def test_final_positions_within_initial_area(self):
        # Particles only ever expand into eligible points, so they end inside
        # the area of the initial shape.
        shape = SHAPES["holey_hexagon"]
        area = shape.area_points
        system, _, _ = run_dle(shape, seed=6)
        for particle in system.particles():
            assert particle.head in area
