"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scaling_requires_known_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaling", "magic"])

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.family == "holey"
        assert args.size == 3
        assert not args.known_boundary

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.seeds == [0]
        assert not args.resume

    def test_sweep_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--algorithms", "magic"])

    def test_sweep_capable_commands_share_jobs_default(self):
        sweep = build_parser().parse_args(["sweep"])
        table1 = build_parser().parse_args(["table1"])
        scaling = build_parser().parse_args(["scaling", "dle"])
        assert sweep.jobs == table1.jobs == scaling.jobs == 1


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "hexagon" in out
        assert "annulus" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "--family", "hexagon", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "D_A" in out
        assert "19" in out  # n of a radius-2 hexagon

    def test_elect_known_boundary(self, capsys):
        code = main(["elect", "--family", "hexagon", "--size", "2",
                     "--known-boundary", "--render"])
        assert code == 0
        out = capsys.readouterr().out
        assert "leader point" in out
        assert "connected after  : True" in out
        assert "L" in out  # rendered leader glyph

    def test_elect_full_pipeline_no_reconnect(self, capsys):
        code = main(["elect", "--family", "hexagon", "--size", "2",
                     "--no-reconnect"])
        assert code == 0
        out = capsys.readouterr().out
        assert "'collect': 0" in out

    def test_table1_with_json_dump(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        code = main(["table1", "--sizes", "2", "--families", "hexagon",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "This paper" in out
        data = json.loads(path.read_text())
        assert len(data) > 0
        assert {"algorithm", "rounds", "metrics"} <= set(data[0])

    def test_scaling_command(self, capsys):
        code = main(["scaling", "dle", "--families", "hexagon",
                     "--sizes", "2", "3", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds vs D_A" in out
        assert "linear fit" in out

    def test_scaling_custom_parameter(self, capsys):
        code = main(["scaling", "obd", "--families", "hexagon",
                     "--sizes", "2", "3", "--parameter", "L_out"])
        assert code == 0
        assert "rounds vs L_out" in capsys.readouterr().out

    def test_sweep_command_with_json_dump(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        code = main(["sweep", "--algorithms", "dle", "erosion",
                     "--families", "hexagon", "--sizes", "2",
                     "--seeds", "0", "1", "--quiet", "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep results" in out
        assert "4 runs" in out and "4 executed" in out
        data = json.loads(path.read_text())
        assert len(data) == 4
        assert {"algorithm", "rounds", "metrics"} <= set(data[0])

    def test_sweep_warm_cache_and_resume(self, capsys, tmp_path):
        argv = ["sweep", "--algorithms", "dle", "--families", "hexagon",
                "--sizes", "2", "3", "--quiet",
                "--cache-dir", str(tmp_path / "cache"),
                "--ledger", str(tmp_path / "ledger.jsonl")]
        assert main(argv) == 0
        assert "2 executed" in capsys.readouterr().out
        # Warm cache: nothing executes the second time.
        assert main(argv) == 0
        assert "2 cached" in capsys.readouterr().out
        # Resume from the ledger: nothing executes either.
        assert main(argv + ["--resume"]) == 0
        assert "2 resumed" in capsys.readouterr().out

    def test_sweep_resume_requires_ledger(self, capsys):
        assert main(["sweep", "--resume", "--quiet"]) == 2
        assert "--resume requires --ledger" in capsys.readouterr().err

    def test_sweep_progress_streams_to_stderr(self, capsys):
        assert main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2"]) == 0
        err = capsys.readouterr().err
        assert "[1/1] dle/hexagon size=2 seed=0: ok" in err

    @pytest.mark.parametrize("parameter", ["BOGUS", "family", "ok"])
    def test_sweep_rejects_non_numeric_parameter(self, capsys, parameter):
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "--parameter", parameter, "--quiet"])
        assert code == 2
        assert f"parameter {parameter!r}" in capsys.readouterr().err

    def test_sweep_exits_nonzero_when_runs_fail(self, capsys, monkeypatch):
        from repro.analysis import experiments

        def broken(shape, seed, order="random"):
            raise RuntimeError("driver exploded")

        monkeypatch.setitem(experiments.ALGORITHMS, "dle", broken)
        code = main(["sweep", "--algorithms", "dle", "erosion",
                     "--families", "hexagon", "--sizes", "2", "--quiet"])
        assert code == 1
        captured = capsys.readouterr()
        assert "1 FAILED" in captured.out
        assert "driver exploded" in captured.err

    def test_sweep_with_parameter_fit(self, capsys):
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "3", "4", "--parameter", "D_A",
                     "--quiet"])
        assert code == 0
        assert "dle rounds vs D_A (hexagon)" in capsys.readouterr().out
