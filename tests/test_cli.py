"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scaling_requires_known_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaling", "magic"])

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.family == "holey"
        assert args.size == 3
        assert not args.known_boundary


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "hexagon" in out
        assert "annulus" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "--family", "hexagon", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "D_A" in out
        assert "19" in out  # n of a radius-2 hexagon

    def test_elect_known_boundary(self, capsys):
        code = main(["elect", "--family", "hexagon", "--size", "2",
                     "--known-boundary", "--render"])
        assert code == 0
        out = capsys.readouterr().out
        assert "leader point" in out
        assert "connected after  : True" in out
        assert "L" in out  # rendered leader glyph

    def test_elect_full_pipeline_no_reconnect(self, capsys):
        code = main(["elect", "--family", "hexagon", "--size", "2",
                     "--no-reconnect"])
        assert code == 0
        out = capsys.readouterr().out
        assert "'collect': 0" in out

    def test_table1_with_json_dump(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        code = main(["table1", "--sizes", "2", "--families", "hexagon",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "This paper" in out
        data = json.loads(path.read_text())
        assert len(data) > 0
        assert {"algorithm", "rounds", "metrics"} <= set(data[0])

    def test_scaling_command(self, capsys):
        code = main(["scaling", "dle", "--families", "hexagon",
                     "--sizes", "2", "3", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds vs D_A" in out
        assert "linear fit" in out

    def test_scaling_custom_parameter(self, capsys):
        code = main(["scaling", "obd", "--families", "hexagon",
                     "--sizes", "2", "3", "--parameter", "L_out"])
        assert code == 0
        assert "rounds vs L_out" in capsys.readouterr().out
