"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scaling_requires_known_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scaling", "magic"])

    def test_elect_defaults(self):
        args = build_parser().parse_args(["elect"])
        assert args.family == "holey"
        assert args.size == 3
        assert not args.known_boundary

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.jobs == 1
        assert args.seeds == [0]
        assert not args.resume

    def test_sweep_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--algorithms", "magic"])

    def test_sweep_capable_commands_share_jobs_default(self):
        sweep = build_parser().parse_args(["sweep"])
        table1 = build_parser().parse_args(["table1"])
        scaling = build_parser().parse_args(["scaling", "dle"])
        assert sweep.jobs == table1.jobs == scaling.jobs == 1


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "hexagon" in out
        assert "annulus" in out

    def test_metrics(self, capsys):
        assert main(["metrics", "--family", "hexagon", "--size", "2"]) == 0
        out = capsys.readouterr().out
        assert "D_A" in out
        assert "19" in out  # n of a radius-2 hexagon

    def test_elect_known_boundary(self, capsys):
        code = main(["elect", "--family", "hexagon", "--size", "2",
                     "--known-boundary", "--render"])
        assert code == 0
        out = capsys.readouterr().out
        assert "leader point" in out
        assert "connected after  : True" in out
        assert "L" in out  # rendered leader glyph

    def test_elect_full_pipeline_no_reconnect(self, capsys):
        code = main(["elect", "--family", "hexagon", "--size", "2",
                     "--no-reconnect"])
        assert code == 0
        out = capsys.readouterr().out
        assert "'collect': 0" in out

    def test_table1_with_json_dump(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        code = main(["table1", "--sizes", "2", "--families", "hexagon",
                     "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "This paper" in out
        data = json.loads(path.read_text())
        assert len(data) > 0
        assert {"algorithm", "rounds", "metrics"} <= set(data[0])

    def test_scaling_command(self, capsys):
        code = main(["scaling", "dle", "--families", "hexagon",
                     "--sizes", "2", "3", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "rounds vs D_A" in out
        assert "linear fit" in out

    def test_scaling_custom_parameter(self, capsys):
        code = main(["scaling", "obd", "--families", "hexagon",
                     "--sizes", "2", "3", "--parameter", "L_out"])
        assert code == 0
        assert "rounds vs L_out" in capsys.readouterr().out

    def test_sweep_command_with_json_dump(self, capsys, tmp_path):
        path = tmp_path / "sweep.json"
        code = main(["sweep", "--algorithms", "dle", "erosion",
                     "--families", "hexagon", "--sizes", "2",
                     "--seeds", "0", "1", "--quiet", "--json", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep results" in out
        assert "4 runs" in out and "4 executed" in out
        data = json.loads(path.read_text())
        assert len(data) == 4
        assert {"algorithm", "rounds", "metrics"} <= set(data[0])

    def test_sweep_warm_cache_and_resume(self, capsys, tmp_path):
        argv = ["sweep", "--algorithms", "dle", "--families", "hexagon",
                "--sizes", "2", "3", "--quiet",
                "--cache-dir", str(tmp_path / "cache"),
                "--ledger", str(tmp_path / "ledger.jsonl")]
        assert main(argv) == 0
        assert "2 executed" in capsys.readouterr().out
        # Warm cache: nothing executes the second time.
        assert main(argv) == 0
        assert "2 cached" in capsys.readouterr().out
        # Resume from the ledger: nothing executes either.
        assert main(argv + ["--resume"]) == 0
        assert "2 resumed" in capsys.readouterr().out

    def test_sweep_resume_requires_ledger(self, capsys):
        assert main(["sweep", "--resume", "--quiet"]) == 2
        assert "--resume requires --ledger" in capsys.readouterr().err

    def test_sweep_progress_streams_to_stderr(self, capsys):
        assert main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2"]) == 0
        err = capsys.readouterr().err
        assert "[1/1] dle/hexagon size=2 seed=0: ok" in err

    @pytest.mark.parametrize("parameter", ["BOGUS", "family", "ok"])
    def test_sweep_rejects_non_numeric_parameter(self, capsys, parameter):
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "--parameter", parameter, "--quiet"])
        assert code == 2
        assert f"parameter {parameter!r}" in capsys.readouterr().err

    def test_sweep_exits_nonzero_when_runs_fail(self, capsys, monkeypatch):
        from repro.analysis import experiments

        def broken(shape, seed, order="random", engine="sweep"):
            raise RuntimeError("driver exploded")

        monkeypatch.setitem(experiments.ALGORITHMS, "dle", broken)
        code = main(["sweep", "--algorithms", "dle", "erosion",
                     "--families", "hexagon", "--sizes", "2", "--quiet"])
        assert code == 1
        captured = capsys.readouterr()
        assert "1 FAILED" in captured.out
        assert "driver exploded" in captured.err

    def test_sweep_with_parameter_fit(self, capsys):
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "3", "4", "--parameter", "D_A",
                     "--quiet"])
        assert code == 0
        assert "dle rounds vs D_A (hexagon)" in capsys.readouterr().out


class TestEngineFlag:
    def test_sweep_engine_default(self):
        args = build_parser().parse_args(["sweep"])
        assert args.engine == "sweep"

    def test_sweep_engine_choices(self):
        args = build_parser().parse_args(["sweep", "--engine", "event"])
        assert args.engine == "event"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--engine", "warp"])

    def test_sweep_event_engine_runs(self, capsys):
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "--engine", "event", "--quiet"])
        assert code == 0
        assert "sweep results" in capsys.readouterr().out

    def test_engine_changes_the_cache_key(self, capsys, tmp_path):
        base = ["sweep", "--algorithms", "dle", "--families", "hexagon",
                "--sizes", "2", "--quiet", "--cache-dir", str(tmp_path / "c")]
        assert main(base) == 0
        assert "1 executed" in capsys.readouterr().out
        # Same config under the other engine must not be served from cache.
        assert main(base + ["--engine", "event"]) == 0
        assert "1 executed" in capsys.readouterr().out
        # Re-running either engine hits its own cache entry.
        assert main(base + ["--engine", "event"]) == 0
        assert "1 cached" in capsys.readouterr().out

    def test_summary_json(self, capsys, tmp_path):
        path = tmp_path / "summary.json"
        code = main(["sweep", "--algorithms", "dle", "erosion",
                     "--families", "hexagon", "--sizes", "2", "--quiet",
                     "--summary-json", str(path)])
        assert code == 0
        summary = json.loads(path.read_text())
        assert summary["kind"] == "sweep-summary"
        assert summary["ok"] is True
        assert summary["counts"]["total"] == 2
        assert summary["counts"]["executed"] == 2
        assert summary["failures"] == []
        assert summary["spec"]["engine"] == "sweep"

    def test_summary_json_records_failures(self, tmp_path, capsys, monkeypatch):
        from repro.analysis import experiments

        def broken(shape, seed, order="random", engine="sweep"):
            raise RuntimeError("driver exploded")

        monkeypatch.setitem(experiments.ALGORITHMS, "dle", broken)
        path = tmp_path / "summary.json"
        code = main(["sweep", "--algorithms", "dle", "erosion",
                     "--families", "hexagon", "--sizes", "2", "--quiet",
                     "--summary-json", str(path)])
        assert code == 1
        summary = json.loads(path.read_text())
        assert summary["ok"] is False
        assert summary["counts"]["failed"] == 1
        assert any("dle/hexagon" in failure for failure in summary["failures"])


class TestBenchCommand:
    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert args.repeats == 3
        assert args.max_regression == 0.25
        assert args.baseline is None

    def test_bench_only_filter_runs_and_writes_report(self, capsys, tmp_path):
        out = tmp_path / "bench.json"
        code = main(["bench", "--quick", "--repeats", "1",
                     "--only", "dle/hexagon/10", "--out", str(out), "--quiet"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "dle/hexagon/10/sweep" in printed
        assert "event-engine speedup" in printed
        data = json.loads(out.read_text())
        assert data["kind"] == "repro-bench"
        assert len(data["entries"]) == 2

    def test_bench_unknown_filter_errors(self, capsys, tmp_path):
        code = main(["bench", "--quick", "--only", "nonexistent",
                     "--out", str(tmp_path / "b.json"), "--quiet"])
        assert code == 2
        assert "no benchmark entries matched" in capsys.readouterr().err

    def test_bench_baseline_gate_passes_against_itself(self, capsys, tmp_path):
        out1 = tmp_path / "first.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "dle/hexagon/10", "--out", str(out1),
                     "--quiet"]) == 0
        capsys.readouterr()
        out2 = tmp_path / "second.json"
        code = main(["bench", "--quick", "--repeats", "1",
                     "--only", "dle/hexagon/10", "--out", str(out2),
                     "--baseline", str(out1), "--max-regression", "5.0",
                     "--quiet"])
        assert code == 0
        assert "baseline check ok" in capsys.readouterr().out

    def test_bench_baseline_gate_fails_on_regression(self, capsys, tmp_path):
        out1 = tmp_path / "first.json"
        assert main(["bench", "--quick", "--repeats", "1",
                     "--only", "dle/hexagon/10", "--out", str(out1),
                     "--quiet"]) == 0
        # Shrink the baseline's normalized times so the rerun "regresses".
        data = json.loads(out1.read_text())
        for entry in data["entries"]:
            entry["normalized"] /= 100.0
        out1.write_text(json.dumps(data))
        capsys.readouterr()
        code = main(["bench", "--quick", "--repeats", "1",
                     "--only", "dle/hexagon/10", "--out",
                     str(tmp_path / "second.json"),
                     "--baseline", str(out1), "--quiet"])
        assert code == 1
        assert "regressed" in capsys.readouterr().err


class TestRunCommand:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "dle"
        assert args.checkpoint_dir is None
        assert args.resume_from is None

    def test_run_executes_one_config(self, capsys, tmp_path):
        out = tmp_path / "record.json"
        code = main(["run", "--algorithm", "dle", "--family", "hexagon",
                     "--size", "2", "--json", str(out)])
        assert code == 0
        assert "dle/hexagon size=2" in capsys.readouterr().out
        (record,) = json.loads(out.read_text())
        assert record["algorithm"] == "dle"
        assert record["succeeded"]

    def test_run_checkpoint_every_requires_dir(self, capsys):
        code = main(["run", "--checkpoint-every", "5"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_run_resume_from_missing_file_errors(self, capsys, tmp_path):
        code = main(["run", "--resume-from", str(tmp_path / "missing.json")])
        assert code == 2
        assert "no checkpoint" in capsys.readouterr().err

    def test_run_kill_then_resume_from(self, capsys, tmp_path):
        # Interrupt a checkpointing run, then finish it via --resume-from.
        from repro.session import Session

        class Kill(Exception):
            pass

        def bomb(rounds, path):
            raise Kill

        config = {"algorithm": "dle", "family": "holey", "size": 3,
                  "seed": 1, "scheduler": "random", "engine": "event"}
        with pytest.raises(Kill):
            Session.run(config, checkpoint_every=3,
                        checkpoint_dir=tmp_path, on_checkpoint=bomb)
        (checkpoint,) = tmp_path.glob("checkpoint-*.json")
        code = main(["run", "--resume-from", str(checkpoint)])
        assert code == 0
        assert "dle/holey size=3" in capsys.readouterr().out
        assert not checkpoint.exists()

    def test_sweep_checkpoint_every_requires_dir(self, capsys):
        code = main(["sweep", "--checkpoint-every", "5"])
        assert code == 2
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_sweep_with_checkpointing_runs_clean(self, capsys, tmp_path):
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "--checkpoint-every", "5",
                     "--checkpoint-dir", str(tmp_path / "ckpts"), "--quiet"])
        assert code == 0
        # Clean completion leaves no checkpoint files behind.
        assert list((tmp_path / "ckpts").glob("checkpoint-*")) == []


class TestStatusWatch:
    def _args(self, watch=0.01, as_json=False):
        import argparse

        return argparse.Namespace(coordinator="localhost:1", queue_dir=None,
                                  secret=None, watch=watch, json=as_json)

    def test_watch_survives_snapshot_errors(self, capsys):
        from repro.cli import _watch_status

        document = {"kind": "repro-status", "source": "tcp",
                    "target": "localhost:1", "board": {"pending": 1},
                    "workers": [], "stop": False}
        # Coordinator up, then restarting (two failures), then up again.
        outcomes = [document, ConnectionError("refused"),
                    OSError("unreachable"), document]

        def snapshot(args):
            outcome = outcomes.pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        def sleep(seconds):
            if not outcomes:
                raise KeyboardInterrupt

        code = _watch_status(self._args(), snapshot=snapshot, sleep=sleep)
        assert code == 130
        captured = capsys.readouterr()
        # Both successful polls rendered; the outage was reported once.
        assert captured.out.count("1 pending") == 2
        assert captured.err.count("retrying every") == 1
        assert "answering again" in captured.err

    def test_watch_stops_on_interrupt_during_poll(self):
        from repro.cli import _watch_status

        def snapshot(args):
            raise KeyboardInterrupt

        assert _watch_status(self._args(), snapshot=snapshot,
                             sleep=lambda s: None) == 130

    def test_watch_json_is_ndjson_one_document_per_tick(self, capsys):
        from repro.cli import _watch_status

        documents = [
            {"kind": "repro-status", "source": "tcp",
             "target": "localhost:1", "board": {"pending": tick},
             "workers": [], "stop": False}
            for tick in (2, 1, 0)]
        remaining = list(documents)

        def snapshot(args):
            return remaining.pop(0)

        def sleep(seconds):
            if not remaining:
                raise KeyboardInterrupt

        code = _watch_status(self._args(as_json=True), snapshot=snapshot,
                             sleep=sleep)
        assert code == 130
        lines = capsys.readouterr().out.splitlines()
        # One compact JSON document per tick — pipeable NDJSON, no
        # pretty-printing spread across lines.
        assert len(lines) == 3
        assert [json.loads(line) for line in lines] == documents
        assert all("\n" not in line and ": " not in line for line in lines)
