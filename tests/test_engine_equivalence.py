"""Engine equivalence: the event-driven scheduler must reproduce the legacy
sweep exactly — same per-round configurations, same final memories, same
round counts — across algorithms, activation-order policies and seeds.

This is the property the quiescence protocol promises: parking a particle
the algorithm declares quiescent and re-waking it on dirty-neighborhood
events is a pure performance transformation, never a semantic one.
"""

import pytest

from repro.amoebot.algorithm import STATUS_KEY, AmoebotAlgorithm
from repro.amoebot.scheduler import (
    ENGINES,
    EventDrivenScheduler,
    Scheduler,
    SequentialScheduler,
    make_scheduler,
    run_algorithm,
)
from repro.amoebot.system import ParticleSystem
from repro.analysis.experiments import run_experiment
from repro.baselines.erosion import ErosionLeaderElection
from repro.core.dle import DLEAlgorithm
from repro.grid.generators import hexagon, make_shape

ORDERS = ["round_robin", "random", "reversed"]
SEEDS = [0, 1, 2]


def _run_traced(algorithm_factory, shape, engine, order, seed,
                max_rounds=5000):
    """Run one algorithm and capture a full per-round execution trace."""
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    algorithm = algorithm_factory()
    trace = []

    def hook(round_index, sys_):
        trace.append((round_index, sys_.snapshot()))

    result = make_scheduler(engine, order=order, seed=seed).run(
        algorithm, system, max_rounds=max_rounds, round_hook=hook)
    final = sorted(
        (p.particle_id, p.get(STATUS_KEY), bool(p.get("terminated")))
        for p in system.particles()
    )
    return {
        "rounds": result.rounds,
        "moves": result.moves,
        "terminated": result.terminated,
        "trace": trace,
        "final": final,
    }


class TestDLEEquivalence:
    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("family", ["hexagon", "holey"])
    def test_identical_traces_and_rounds(self, order, seed, family):
        shape = make_shape(family, 3, seed=seed)
        sweep = _run_traced(DLEAlgorithm, shape, "sweep", order, seed)
        event = _run_traced(DLEAlgorithm, shape, "event", order, seed)
        assert event["rounds"] == sweep["rounds"]
        assert event["moves"] == sweep["moves"]
        assert event["trace"] == sweep["trace"]
        assert event["final"] == sweep["final"]

    def test_event_engine_skips_activations(self):
        """The speedup is real: far fewer activations on a big shape."""
        shape = hexagon(6)
        system_sweep = ParticleSystem.from_shape(shape, orientation_seed=0)
        system_event = ParticleSystem.from_shape(shape, orientation_seed=0)
        sweep = SequentialScheduler(order="random", seed=0).run(
            DLEAlgorithm(), system_sweep)
        event = EventDrivenScheduler(order="random", seed=0).run(
            DLEAlgorithm(), system_event)
        assert event.rounds == sweep.rounds
        assert event.activations < sweep.activations / 2
        assert event.skipped > 0
        assert sweep.skipped == 0


class TestErosionEquivalence:
    @pytest.mark.parametrize("order", ORDERS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_hexagon_success_path(self, order, seed):
        shape = hexagon(3)
        sweep = _run_traced(ErosionLeaderElection, shape, "sweep", order, seed)
        event = _run_traced(ErosionLeaderElection, shape, "event", order, seed)
        assert event == sweep

    @pytest.mark.parametrize("order", ORDERS)
    def test_holey_stall_path(self, order):
        """The stall detector (a round with no changes) must fire at the
        same round even when every particle is parked."""
        shape = make_shape("holey", 3, seed=1)
        sweep = _run_traced(ErosionLeaderElection, shape, "sweep", order, 0)
        event = _run_traced(ErosionLeaderElection, shape, "event", order, 0)
        assert event == sweep


class TestConservativeDefault:
    """Algorithms without quiescence declarations run unmodified."""

    class Countdown(AmoebotAlgorithm):
        name = "countdown"

        def setup(self, system):
            for particle in system.particles():
                particle["count"] = 3

        def activate(self, particle, system):
            if particle["count"] > 0:
                particle["count"] -= 1

        def is_terminated(self, particle, system):
            return particle["count"] == 0

    @pytest.mark.parametrize("order", ORDERS)
    def test_default_is_quiescent_means_no_parking(self, order):
        shape = hexagon(2)
        results = {}
        for engine in ENGINES:
            system = ParticleSystem.from_shape(shape)
            results[engine] = make_scheduler(engine, order=order, seed=3).run(
                self.Countdown(), system)
        sweep, event = results["sweep"], results["event"]
        assert event.rounds == sweep.rounds == 3
        # Nothing declares quiescence, so nothing is parked and both
        # engines do identical work.
        assert event.activations == sweep.activations
        assert event.skipped == 0

    def test_truthy_flag_return_keeps_conservative_wake(self):
        """A legacy activate() returning a truthy non-list (e.g. 1) must
        keep the conservative wake, not be mistaken for a wake list."""

        class Flagger(AmoebotAlgorithm):
            name = "flagger"

            def setup(self, system):
                for p in system.particles():
                    p["count"] = 2

            def activate(self, particle, system):
                if particle["count"] > 0:
                    particle["count"] -= 1
                    return 1  # legacy truthy "I acted" flag
                return False

            def is_terminated(self, particle, system):
                return particle["count"] == 0

            def is_quiescent(self, particle, system):
                return particle["count"] == 0

        results = {}
        for engine in ENGINES:
            system = ParticleSystem.from_shape(hexagon(2))
            r = make_scheduler(engine, order="random", seed=0).run(
                Flagger(), system)
            results[engine] = (r.rounds, r.terminated)
        assert results["sweep"] == results["event"]
        assert results["sweep"][1]

    def test_custom_policy_named_random_uses_plain_path(self):
        """A user-supplied policy whose __name__ collides with the
        built-in 'random' must not reach for the bulk key stream."""

        def random(round_index, ids, rng):
            return sorted(ids, key=lambda pid: rng.random())

        shape = make_shape("hexagon", 2, seed=0)
        sweep = _run_traced(DLEAlgorithm, shape, "sweep", random, 0)
        event = _run_traced(DLEAlgorithm, shape, "event", random, 0)
        assert event == sweep

    def test_custom_order_policy_works_on_event_engine(self):
        def rotate(round_index, ids, rng):
            shift = round_index % len(ids)
            return ids[shift:] + ids[:shift]

        shape = make_shape("holey", 3, seed=1)
        sweep = _run_traced(DLEAlgorithm, shape, "sweep", rotate, 0)
        event = _run_traced(DLEAlgorithm, shape, "event", rotate, 0)
        assert event == sweep

    def test_broken_custom_policy_still_validated(self):
        def broken(round_index, ids, rng):
            return ids[:-1]

        system = ParticleSystem.from_shape(hexagon(2))
        with pytest.raises(ValueError):
            EventDrivenScheduler(order=broken).run(DLEAlgorithm(), system)


class TestPipelinesAcrossEngines:
    @pytest.mark.parametrize("algorithm", ["dle", "dle+collect",
                                           "obd+dle+collect", "erosion"])
    def test_records_match(self, algorithm):
        shape = make_shape("hexagon", 3, seed=0)
        sweep = run_experiment(algorithm, shape, family="hexagon", size=3,
                               seed=0, engine="sweep")
        event = run_experiment(algorithm, shape, family="hexagon", size=3,
                               seed=0, engine="event")
        assert event.rounds == sweep.rounds
        assert event.succeeded == sweep.succeeded


class TestEngineSelection:
    def test_scheduler_alias_is_the_sweep(self):
        assert Scheduler is SequentialScheduler
        assert Scheduler.engine == "sweep"

    def test_make_scheduler_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            make_scheduler("warp")

    def test_run_algorithm_engine_parameter(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        result = run_algorithm(DLEAlgorithm(), system, order="round_robin",
                               seed=0, engine="event")
        assert result.terminated
        assert result.engine == "event"

    def test_result_records_engine(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        result = run_algorithm(DLEAlgorithm(), system, seed=0)
        assert result.engine == "sweep"

    def test_phase_simulators_declare_quiescence(self):
        """OBD and Collect are analytic phase simulators: their explicit
        declaration marks every particle vacuously quiescent."""
        from repro.core.collect import CollectSimulator
        from repro.core.obd import OuterBoundaryDetection

        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=0)
        particle = system.particles()[0]
        obd = OuterBoundaryDetection(system)
        assert obd.is_quiescent(particle, system)
        run_algorithm(DLEAlgorithm(), system, order="round_robin")
        from repro.core.dle import verify_unique_leader

        leader = verify_unique_leader(system)
        collect = CollectSimulator(system, leader)
        assert collect.is_quiescent(leader, system)


class TestMidRunGrowth:
    """Particles added while the run executes join the schedule next round
    on both engines (a mid-round addition has no slot in the current
    round's order)."""

    class SpawnOnce(AmoebotAlgorithm):
        name = "spawn-once"

        def setup(self, system):
            self.spawned = False
            for particle in system.particles():
                particle["count"] = 2

        def activate(self, particle, system):
            if not self.spawned:
                self.spawned = True
                free = None
                from repro.grid.coords import neighbor

                for d in range(6):
                    candidate = neighbor(particle.head, d)
                    if not system.is_occupied(candidate):
                        free = candidate
                        break
                spawned = system.add_particle(free)
                spawned["count"] = 2
            if particle.get("count", 0) > 0:
                particle["count"] -= 1

        def is_terminated(self, particle, system):
            return particle.get("count", 0) == 0

    @pytest.mark.parametrize("order", ORDERS)
    def test_add_particle_mid_round(self, order):
        results = {}
        for engine in ENGINES:
            system = ParticleSystem.from_shape(hexagon(1))
            result = make_scheduler(engine, order=order, seed=5).run(
                self.SpawnOnce(), system, max_rounds=50)
            results[engine] = (result.rounds, result.terminated, len(system))
        assert results["event"] == results["sweep"]
        assert results["sweep"][1]  # terminated
        assert results["sweep"][2] == 8  # hexagon(1) has 7 + 1 spawned
