"""Unit tests for the ParticleSystem movement and occupancy bookkeeping."""

import pytest

from repro.amoebot.system import IllegalMoveError, ParticleSystem
from repro.grid.coords import neighbor
from repro.grid.generators import hexagon, line_shape
from repro.grid.shape import Shape

ORIGIN = (0, 0)


def small_system():
    system = ParticleSystem()
    a = system.add_particle(ORIGIN)
    b = system.add_particle((1, 0))
    return system, a, b


class TestConstruction:
    def test_add_particle(self):
        system = ParticleSystem()
        p = system.add_particle((2, 2), orientation=3)
        assert len(system) == 1
        assert system.particle_at((2, 2)) is p
        assert system.is_occupied((2, 2))

    def test_add_particle_on_occupied_point(self):
        system, _, _ = small_system()
        with pytest.raises(IllegalMoveError):
            system.add_particle(ORIGIN)

    def test_from_shape(self):
        shape = hexagon(2)
        system = ParticleSystem.from_shape(shape)
        assert len(system) == len(shape)
        assert system.occupied_points() == shape.points
        assert system.all_contracted()

    def test_from_shape_orientation_seed_deterministic(self):
        shape = hexagon(1)
        a = ParticleSystem.from_shape(shape, orientation_seed=5)
        b = ParticleSystem.from_shape(shape, orientation_seed=5)
        assert ([p.orientation for p in a.particles()]
                == [p.orientation for p in b.particles()])

    def test_from_shape_without_seed_uses_zero_orientation(self):
        system = ParticleSystem.from_shape(hexagon(1))
        assert all(p.orientation == 0 for p in system.particles())

    def test_shape_roundtrip(self):
        shape = line_shape(5)
        system = ParticleSystem.from_shape(shape)
        assert system.shape() == shape


class TestInspection:
    def test_particles_sorted_by_id(self):
        system, a, b = small_system()
        assert [p.particle_id for p in system.particles()] == [a.particle_id,
                                                               b.particle_id]

    def test_neighbors_of(self):
        system, a, b = small_system()
        c = system.add_particle((5, 5))
        assert system.neighbors_of(a) == (b,)
        assert system.neighbors_of(c) == ()
        assert system.neighbor_ids(a) == (b.particle_id,)

    def test_neighbors_of_expanded_particle(self):
        system, a, b = small_system()
        system.expand(b, (2, 0))
        c = system.add_particle((3, 0))
        # c is adjacent to b's head only; a is adjacent to b's tail only.
        assert set(system.neighbors_of(b)) == {a, c}
        assert b in system.neighbors_of(c)

    def test_neighbor_particle(self):
        system, a, b = small_system()
        assert system.neighbor_particle(ORIGIN, 0) is b
        assert system.neighbor_particle(ORIGIN, 3) is None

    def test_is_connected(self):
        system, _, _ = small_system()
        assert system.is_connected()
        system.add_particle((10, 10))
        assert not system.is_connected()


class TestExpansionContraction:
    def test_expand_updates_occupancy(self):
        system, a, _ = small_system()
        target = neighbor(ORIGIN, 4)
        system.expand(a, target)
        assert a.is_expanded
        assert a.head == target
        assert a.tail == ORIGIN
        assert system.particle_at(target) is a
        assert system.particle_at(ORIGIN) is a
        assert system.move_count == 1

    def test_expand_into_occupied_point_fails(self):
        system, a, _ = small_system()
        with pytest.raises(IllegalMoveError):
            system.expand(a, (1, 0))

    def test_expand_non_adjacent_fails(self):
        system, a, _ = small_system()
        with pytest.raises(ValueError):
            system.expand(a, (4, 4))

    def test_expand_already_expanded_fails(self):
        system, a, _ = small_system()
        system.expand(a, neighbor(ORIGIN, 4))
        with pytest.raises(IllegalMoveError):
            system.expand(a, neighbor(ORIGIN, 5))

    def test_expand_toward(self):
        system, a, _ = small_system()
        target = system.expand_toward(a, 2)
        assert target == neighbor(ORIGIN, 2)
        assert a.head == target

    def test_contract_to_head(self):
        system, a, _ = small_system()
        target = neighbor(ORIGIN, 4)
        system.expand(a, target)
        system.contract_to_head(a)
        assert a.is_contracted
        assert a.head == target
        assert not system.is_occupied(ORIGIN)

    def test_contract_to_tail(self):
        system, a, _ = small_system()
        target = neighbor(ORIGIN, 4)
        system.expand(a, target)
        system.contract_to_tail(a)
        assert a.is_contracted
        assert a.head == ORIGIN
        assert not system.is_occupied(target)

    def test_contract_contracted_fails(self):
        system, a, _ = small_system()
        with pytest.raises(IllegalMoveError):
            system.contract_to_head(a)


class TestHandover:
    def test_handover_into_tail(self):
        system, a, b = small_system()
        system.expand(b, (2, 0))           # b occupies (1,0) tail, (2,0) head
        system.handover(a, b)              # a expands into (1,0)
        assert a.is_expanded
        assert a.head == (1, 0)
        assert a.tail == ORIGIN
        assert b.is_contracted
        assert b.head == (2, 0)
        assert system.particle_at((1, 0)) is a

    def test_handover_requires_contracted_first(self):
        system, a, b = small_system()
        system.expand(a, neighbor(ORIGIN, 4))
        system.expand(b, (2, 0))
        with pytest.raises(IllegalMoveError):
            system.handover(a, b)

    def test_handover_requires_expanded_second(self):
        system, a, b = small_system()
        with pytest.raises(IllegalMoveError):
            system.handover(a, b)

    def test_handover_non_adjacent_fails(self):
        system = ParticleSystem()
        a = system.add_particle(ORIGIN)
        b = system.add_particle((3, 0))
        system.expand(b, (4, 0))
        with pytest.raises(ValueError):
            system.handover(a, b, into=(3, 0))

    def test_handover_explicit_point_not_occupied_by_expanded(self):
        system, a, b = small_system()
        system.expand(b, (2, 0))
        with pytest.raises(IllegalMoveError):
            system.handover(a, b, into=(5, 5))


class TestBulkOperations:
    def test_teleport(self):
        system, a, _ = small_system()
        system.teleport(a, (7, 7))
        assert a.head == (7, 7)
        assert not system.is_occupied(ORIGIN)
        assert system.is_occupied((7, 7))

    def test_teleport_onto_occupied_fails(self):
        system, a, _ = small_system()
        with pytest.raises(IllegalMoveError):
            system.teleport(a, (1, 0))

    def test_teleport_expanded_fails(self):
        system, a, _ = small_system()
        system.expand(a, neighbor(ORIGIN, 4))
        with pytest.raises(IllegalMoveError):
            system.teleport(a, (9, 9))

    def test_bulk_relocate_swap(self):
        system, a, b = small_system()
        system.bulk_relocate({a.particle_id: (1, 0), b.particle_id: ORIGIN})
        assert system.particle_at((1, 0)) is a
        assert system.particle_at(ORIGIN) is b

    def test_bulk_relocate_collision_fails(self):
        system, a, b = small_system()
        with pytest.raises(IllegalMoveError):
            system.bulk_relocate({a.particle_id: (5, 5), b.particle_id: (5, 5)})

    def test_bulk_relocate_onto_unmoved_particle_fails(self):
        system, a, b = small_system()
        with pytest.raises(IllegalMoveError):
            system.bulk_relocate({a.particle_id: (1, 0)})

    def test_snapshot(self):
        system, a, b = small_system()
        snap = system.snapshot()
        assert snap[a.particle_id] == (ORIGIN, ORIGIN)
        assert snap[b.particle_id] == ((1, 0), (1, 0))


def _fresh_neighbor_lists(system):
    """Reference neighbour computation, bypassing the cached index."""
    result = {}
    for particle in system.particles():
        seen = []
        for origin in particle.occupied_points:
            for point in neighbor_points(origin):
                other = system.particle_at(point)
                if other is None or other is particle:
                    continue
                if other.particle_id not in seen:
                    seen.append(other.particle_id)
        result[particle.particle_id] = seen
    return result


def neighbor_points(origin):
    return [neighbor(origin, d) for d in range(6)]


class TestNeighborCache:
    """The cached neighbor index must track every movement operation."""

    def _assert_cache_consistent(self, system):
        expected = _fresh_neighbor_lists(system)
        for particle in system.particles():
            cached = [q.particle_id for q in system.neighbors_of(particle)]
            assert cached == expected[particle.particle_id], (
                f"stale neighbour cache for particle {particle.particle_id}"
            )

    def test_cache_returns_same_result_twice(self):
        system = ParticleSystem.from_shape(hexagon(2))
        for particle in system.particles():
            first = [q.particle_id for q in system.neighbors_of(particle)]
            second = [q.particle_id for q in system.neighbors_of(particle)]
            assert first == second

    def test_invalidated_by_expand(self):
        system = ParticleSystem.from_shape(line_shape(3))
        self._assert_cache_consistent(system)  # populate the cache
        p = system.particle_at((0, 0))
        system.expand(p, (0, 1))
        self._assert_cache_consistent(system)

    def test_invalidated_by_contract_to_head(self):
        system = ParticleSystem.from_shape(line_shape(3))
        self._assert_cache_consistent(system)
        p = system.particle_at((0, 0))
        system.expand(p, (0, 1))
        self._assert_cache_consistent(system)
        system.contract_to_head(p)
        self._assert_cache_consistent(system)

    def test_invalidated_by_contract_to_tail(self):
        system = ParticleSystem.from_shape(line_shape(3))
        self._assert_cache_consistent(system)
        p = system.particle_at((0, 0))
        system.expand(p, (0, 1))
        system.contract_to_tail(p)
        self._assert_cache_consistent(system)

    def test_invalidated_by_handover(self):
        system, a, b = small_system()
        c = system.add_particle((2, 0))
        self._assert_cache_consistent(system)
        system.expand(a, (0, 1))
        self._assert_cache_consistent(system)
        # b (contracted) performs a handover with a (expanded): b expands
        # into a's tail while a contracts.
        system.handover(b, a)
        self._assert_cache_consistent(system)

    def test_invalidated_by_teleport(self):
        system = ParticleSystem.from_shape(line_shape(4))
        self._assert_cache_consistent(system)
        p = system.particle_at((0, 0))
        system.teleport(p, (0, 5))
        self._assert_cache_consistent(system)

    def test_invalidated_by_bulk_relocate(self):
        system = ParticleSystem.from_shape(line_shape(4))
        self._assert_cache_consistent(system)
        ids = system.particle_ids()
        system.bulk_relocate({ids[0]: (0, 7), ids[1]: (1, 7)})
        self._assert_cache_consistent(system)

    def test_invalidated_by_add_particle(self):
        system = ParticleSystem.from_shape(line_shape(2))
        self._assert_cache_consistent(system)
        system.add_particle((2, 0))
        self._assert_cache_consistent(system)

    def test_neighbor_ids_matches_neighbors_of(self):
        system = ParticleSystem.from_shape(hexagon(2))
        for particle in system.particles():
            ids = list(system.neighbor_ids(particle))
            assert ids == [q.particle_id for q in system.neighbors_of(particle)]


class TestChangeEvents:
    def test_every_movement_op_publishes_an_event(self):
        system = ParticleSystem.from_shape(line_shape(3))
        events = []
        system.add_change_listener(
            lambda points, ids: events.append((set(points), set(ids))))
        p = system.particle_at((0, 0))

        system.expand(p, (0, 1))
        assert events and (0, 1) in events[-1][0]
        system.contract_to_tail(p)
        assert (0, 1) in events[-1][0]
        system.teleport(p, (0, 5))
        assert {(0, 0), (0, 5)} <= events[-1][0]
        count_before = len(events)
        system.bulk_relocate({p.particle_id: (0, 9)})
        assert len(events) == count_before + 1
        system.add_particle((5, 5))
        assert (5, 5) in events[-1][0]

    def test_affected_ids_cover_the_neighbourhood(self):
        system, a, b = small_system()
        events = []
        system.add_change_listener(
            lambda points, ids: events.append(frozenset(ids)))
        # a expands away from b; b is adjacent to the vacated/occupied area
        # and must be reported as affected.
        system.expand(a, (0, 1))
        assert a.particle_id in events[-1]
        assert b.particle_id in events[-1]

    def test_remove_listener(self):
        system, a, _ = small_system()
        events = []
        listener = system.add_change_listener(
            lambda points, ids: events.append(points))
        system.remove_change_listener(listener)
        system.expand(a, (0, 1))
        assert events == []
        # Removing twice is a no-op.
        system.remove_change_listener(listener)

    def test_shape_cache_tracks_occupancy_version(self):
        system = ParticleSystem.from_shape(line_shape(3))
        first = system.shape()
        assert system.shape() is first  # cached while nothing moves
        p = system.particle_at((0, 0))
        system.expand(p, (0, 1))
        second = system.shape()
        assert second is not first
        assert (0, 1) in second.points


class TestOrientationStream:
    """from_shape's bulk orientation draws must match the stdlib stream."""

    def test_matches_stdlib_randrange(self):
        import random as _random

        from repro.amoebot.system import _draw_orientations

        for seed in (0, 1, 7, 4242):
            reference = _random.Random(seed)
            expected = [reference.randrange(6) for _ in range(1500)]
            assert _draw_orientations(seed, 1500) == expected

    def test_orientations_applied_in_id_order(self):
        import random as _random

        from repro.grid.generators import hexagon

        shape = hexagon(2)
        system = ParticleSystem.from_shape(shape, orientation_seed=9)
        reference = _random.Random(9)
        expected = [reference.randrange(6) for _ in range(len(system))]
        assert [p.orientation for p in system.particles()] == expected
