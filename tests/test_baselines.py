"""Tests for the Table 1 baselines (erosion-only and randomized election)."""

import pytest

from repro.amoebot.system import ParticleSystem
from repro.baselines.erosion import (
    ErosionLeaderElection,
    run_erosion_election,
)
from repro.baselines.randomized import (
    RandomizedBoundaryElection,
    run_randomized_election,
)
from repro.grid.generators import (
    annulus,
    comb,
    hexagon,
    hexagon_with_holes,
    line_shape,
    parallelogram,
    random_blob,
    spiral,
)
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

HOLE_FREE = {
    "hexagon2": hexagon(2),
    "hexagon4": hexagon(4),
    "line9": line_shape(9),
    "parallelogram": parallelogram(5, 3),
    "comb": comb(4, 3),
    "spiral": spiral(4, 3),
    "pair": Shape([(0, 0), (1, 0)]),
}

HOLEY = {
    "annulus": annulus(5, 2),
    "holey_hexagon": hexagon_with_holes(7),
    "punctured": hexagon(3).without((0, 0)),
}


class TestErosionBaseline:
    @pytest.mark.parametrize("name", sorted(HOLE_FREE))
    def test_succeeds_on_hole_free_shapes(self, name):
        system = ParticleSystem.from_shape(HOLE_FREE[name], orientation_seed=1)
        outcome = run_erosion_election(system, seed=1)
        assert outcome.succeeded
        assert outcome.num_leaders == 1
        assert not outcome.stalled

    @pytest.mark.parametrize("name", sorted(HOLEY))
    def test_fails_on_shapes_with_holes(self, name):
        # The documented restriction of the erosion family ([22], [27]): they
        # require hole-free initial shapes.  On holey shapes our erosion run
        # must not produce a (unique-leader, all-followers) outcome.
        system = ParticleSystem.from_shape(HOLEY[name], orientation_seed=1)
        outcome = run_erosion_election(system, seed=1)
        assert not outcome.succeeded

    @pytest.mark.parametrize("order", ["round_robin", "random", "reversed"])
    def test_scheduler_independence_on_hexagon(self, order):
        system = ParticleSystem.from_shape(hexagon(3), orientation_seed=0)
        outcome = run_erosion_election(system, order=order, seed=5)
        assert outcome.succeeded

    def test_no_particle_ever_moves(self):
        system = ParticleSystem.from_shape(hexagon(3), orientation_seed=2)
        before = system.snapshot()
        run_erosion_election(system, seed=2)
        assert system.snapshot() == before

    def test_rounds_at_most_linear_in_n(self):
        shape = hexagon(4)
        system = ParticleSystem.from_shape(shape)
        outcome = run_erosion_election(system)
        assert outcome.succeeded
        assert outcome.rounds <= len(shape) + 2

    def test_rounds_reported_even_on_failure(self):
        system = ParticleSystem.from_shape(HOLEY["annulus"])
        outcome = run_erosion_election(system)
        assert outcome.rounds > 0

    def test_single_particle(self):
        system = ParticleSystem.from_shape(Shape([(0, 0)]))
        outcome = run_erosion_election(system)
        assert outcome.succeeded
        assert outcome.leader_point == (0, 0)

    def test_requires_connected_shape(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (5, 5)]))
        with pytest.raises(ValueError):
            ErosionLeaderElection().setup(system)


class TestRandomizedBaseline:
    @pytest.mark.parametrize("name", sorted({**HOLE_FREE, **HOLEY}))
    def test_elects_leader_on_outer_boundary(self, name):
        shape = {**HOLE_FREE, **HOLEY}[name]
        system = ParticleSystem.from_shape(shape, orientation_seed=1)
        outcome = run_randomized_election(system, seed=1)
        assert outcome.succeeded
        assert outcome.leader_point in shape.outer_boundary

    def test_deterministic_for_fixed_seed(self):
        shape = hexagon(3)
        outcomes = [
            run_randomized_election(ParticleSystem.from_shape(shape), seed=7)
            for _ in range(2)
        ]
        assert outcomes[0].rounds == outcomes[1].rounds
        assert outcomes[0].leader_point == outcomes[1].leader_point

    def test_leader_varies_with_seed(self):
        shape = hexagon(4)
        leaders = {
            run_randomized_election(ParticleSystem.from_shape(shape), seed=s).leader_point
            for s in range(6)
        }
        assert len(leaders) > 1

    def test_rounds_linear_in_lout_plus_d(self):
        shape = hexagon(5)
        metrics = compute_metrics(shape)
        system = ParticleSystem.from_shape(shape)
        outcome = run_randomized_election(system, seed=3)
        assert outcome.rounds <= 10 * (metrics.l_out + metrics.diameter) + 10

    def test_rounds_composition(self):
        system = ParticleSystem.from_shape(hexagon(3))
        outcome = run_randomized_election(system, seed=2)
        assert outcome.rounds == outcome.ring_rounds + outcome.flood_rounds

    def test_single_particle(self):
        system = ParticleSystem.from_shape(Shape([(0, 0)]))
        outcome = run_randomized_election(system)
        assert outcome.succeeded
        assert outcome.leader_point == (0, 0)

    def test_rejects_disconnected(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (9, 9)]))
        with pytest.raises(ValueError):
            run_randomized_election(system)

    def test_per_ring_statistics_cover_all_boundaries(self):
        shape = HOLEY["holey_hexagon"]
        system = ParticleSystem.from_shape(shape)
        outcome = run_randomized_election(system, seed=4)
        assert len(outcome.per_ring) == 1 + len(shape.holes)
