"""Tests for the shape generators used by the benchmark workloads."""

import pytest

from repro.grid.coords import grid_distance
from repro.grid.generators import (
    SHAPE_FAMILIES,
    annulus,
    comb,
    hexagon,
    hexagon_with_holes,
    line_shape,
    make_shape,
    parallelogram,
    random_blob,
    random_holey_blob,
    spiral,
    triangle,
)


class TestHexagonFamily:
    @pytest.mark.parametrize("radius", [0, 1, 2, 5])
    def test_hexagon_size(self, radius):
        assert len(hexagon(radius)) == 1 + 3 * radius * (radius + 1)

    def test_hexagon_connected_no_holes(self):
        shape = hexagon(4)
        assert shape.is_connected()
        assert shape.holes == []

    def test_hexagon_negative_radius(self):
        with pytest.raises(ValueError):
            hexagon(-1)

    @pytest.mark.parametrize("side", [1, 2, 4])
    def test_triangle_size(self, side):
        assert len(triangle(side)) == side * (side + 1) // 2

    def test_triangle_connected(self):
        assert triangle(5).is_connected()


class TestRectilinearFamilies:
    @pytest.mark.parametrize("w,h", [(1, 1), (3, 2), (5, 5)])
    def test_parallelogram_size(self, w, h):
        assert len(parallelogram(w, h)) == w * h

    def test_parallelogram_connected_simply(self):
        assert parallelogram(6, 4).is_simply_connected()

    def test_parallelogram_invalid(self):
        with pytest.raises(ValueError):
            parallelogram(0, 3)

    @pytest.mark.parametrize("length", [1, 2, 10])
    def test_line_size(self, length):
        assert len(line_shape(length)) == length

    def test_line_diameter_equals_length_minus_one(self):
        from repro.grid.metrics import compute_metrics
        assert compute_metrics(line_shape(8)).diameter == 7

    def test_comb_connected_and_thin(self):
        shape = comb(teeth=4, tooth_length=5)
        assert shape.is_connected()
        assert shape.is_simply_connected()
        # Every comb point is a boundary point.
        assert shape.boundary_points == shape.points

    def test_comb_invalid(self):
        with pytest.raises(ValueError):
            comb(0, 3)


class TestRandomBlobs:
    @pytest.mark.parametrize("n", [1, 5, 40, 150])
    def test_blob_exact_size(self, n):
        assert len(random_blob(n, seed=0)) == n

    def test_blob_connected(self):
        assert random_blob(120, seed=3).is_connected()

    def test_blob_deterministic_per_seed(self):
        assert random_blob(60, seed=4).points == random_blob(60, seed=4).points

    def test_blob_varies_with_seed(self):
        assert random_blob(60, seed=1).points != random_blob(60, seed=2).points

    def test_blob_invalid_size(self):
        with pytest.raises(ValueError):
            random_blob(0)

    def test_holey_blob_connected_with_target_size(self):
        shape = random_holey_blob(100, hole_fraction=0.2, seed=5)
        assert shape.is_connected()
        assert len(shape) >= 100

    def test_holey_blob_often_has_holes(self):
        # With a decent hole fraction at least one of a few seeds produces a
        # hole (each removed interior point is a hole or enlarges one).
        assert any(
            len(random_holey_blob(120, hole_fraction=0.2, seed=s).holes) > 0
            for s in range(4)
        )

    def test_holey_blob_invalid_params(self):
        with pytest.raises(ValueError):
            random_holey_blob(3)
        with pytest.raises(ValueError):
            random_holey_blob(50, hole_fraction=0.95)


class TestHoleyFamilies:
    def test_hexagon_with_holes_connected(self):
        shape = hexagon_with_holes(7)
        assert shape.is_connected()
        assert len(shape.holes) >= 1

    def test_hexagon_with_holes_too_small(self):
        with pytest.raises(ValueError):
            hexagon_with_holes(2)

    @pytest.mark.parametrize("outer,inner", [(3, 1), (5, 2), (6, 4)])
    def test_annulus_structure(self, outer, inner):
        shape = annulus(outer, inner)
        assert shape.is_connected()
        assert len(shape.holes) == 1
        assert len(shape) == (1 + 3 * outer * (outer + 1)) - (1 + 3 * inner * (inner + 1))

    def test_annulus_area_diameter_smaller_than_diameter(self):
        # The regime motivating the paper's O(D_A) bound: thin annuli.
        from repro.grid.metrics import compute_metrics
        metrics = compute_metrics(annulus(7, 5))
        assert metrics.area_diameter < metrics.diameter

    def test_annulus_invalid(self):
        with pytest.raises(ValueError):
            annulus(3, 3)

    def test_spiral_connected_thin(self):
        shape = spiral(6, 3)
        assert shape.is_connected()
        assert shape.boundary_points == shape.points

    def test_spiral_invalid(self):
        with pytest.raises(ValueError):
            spiral(0, 1)


class TestFamilyRegistry:
    @pytest.mark.parametrize("family", sorted(SHAPE_FAMILIES))
    def test_every_family_builds_connected_shapes(self, family):
        shape = make_shape(family, 2, seed=1)
        assert shape.is_connected()
        assert len(shape) >= 2

    @pytest.mark.parametrize("family", sorted(SHAPE_FAMILIES))
    def test_families_grow_with_size(self, family):
        small = make_shape(family, 2, seed=1)
        large = make_shape(family, 4, seed=1)
        assert len(large) > len(small)

    def test_holey_families_have_holes(self):
        for family in ("holey", "annulus"):
            shape = make_shape(family, 2, seed=0)
            assert len(shape.holes) >= 1

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            make_shape("dodecahedron", 2)
