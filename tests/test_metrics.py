"""Tests for the shape metrics (n, D, D_A, D_G, L_out, ...)."""

import pytest

from repro.grid.coords import grid_distance
from repro.grid.generators import (
    annulus,
    comb,
    hexagon,
    hexagon_with_holes,
    line_shape,
    random_blob,
)
from repro.grid.metrics import (
    ShapeMetrics,
    bfs_distances,
    compute_metrics,
    diameter_within,
    eccentricity_within,
    grid_diameter,
    grid_eccentricity,
)
from repro.grid.shape import Shape


class TestBFS:
    def test_bfs_distances_on_line(self):
        shape = line_shape(6)
        points = shape.points
        start = (0, 0)
        distances = bfs_distances(start, points)
        assert distances[(5, 0)] == 5
        assert distances[start] == 0

    def test_bfs_source_must_be_allowed(self):
        with pytest.raises(ValueError):
            bfs_distances((9, 9), {(0, 0)})

    def test_bfs_with_targets_contains_targets(self):
        shape = hexagon(3)
        targets = {(3, 0), (-3, 0)}
        distances = bfs_distances((0, 0), shape.points, targets=targets)
        for t in targets:
            assert distances[t] == 3

    def test_eccentricity_within(self):
        shape = line_shape(5)
        assert eccentricity_within((0, 0), shape.points, shape.points) == 4
        assert eccentricity_within((2, 0), shape.points, shape.points) == 2

    def test_eccentricity_unreachable_raises(self):
        points = {(0, 0), (5, 5)}
        with pytest.raises(ValueError):
            eccentricity_within((0, 0), points, points)

    def test_diameter_within_line(self):
        shape = line_shape(7)
        assert diameter_within(shape.points, shape.points) == 6

    def test_diameter_empty_raises(self):
        with pytest.raises(ValueError):
            diameter_within(set(), set())


class TestGridMetrics:
    def test_grid_eccentricity(self):
        shape = hexagon(3)
        assert grid_eccentricity((0, 0), shape.points) == 3
        assert grid_eccentricity((3, 0), shape.points) == 6

    def test_grid_diameter_hexagon(self):
        assert grid_diameter(hexagon(4).points) == 8

    def test_grid_diameter_single_point(self):
        assert grid_diameter({(0, 0)}) == 0

    def test_grid_diameter_empty_raises(self):
        with pytest.raises(ValueError):
            grid_diameter(set())


class TestComputeMetrics:
    @pytest.mark.parametrize("radius", [1, 2, 4])
    def test_hexagon_metrics(self, radius):
        metrics = compute_metrics(hexagon(radius))
        assert metrics.n == 1 + 3 * radius * (radius + 1)
        assert metrics.diameter == 2 * radius
        assert metrics.area_diameter == 2 * radius
        assert metrics.grid_diam == 2 * radius
        assert metrics.l_out == 6 * radius
        assert metrics.num_holes == 0

    def test_line_metrics(self):
        metrics = compute_metrics(line_shape(10))
        assert metrics.n == 10
        assert metrics.diameter == 9
        assert metrics.grid_diam == 9
        assert metrics.l_out == 10

    def test_annulus_metric_ordering(self):
        # For any shape: D_G <= D_A <= D (paths through the grid are at least
        # as short as paths through the area, which are at least as short as
        # paths through the shape).
        metrics = compute_metrics(annulus(7, 5))
        assert metrics.grid_diam <= metrics.area_diameter <= metrics.diameter
        assert metrics.area_diameter < metrics.diameter

    def test_holey_hexagon_counts_holes(self):
        metrics = compute_metrics(hexagon_with_holes(7))
        assert metrics.num_holes >= 1
        assert metrics.n_area > metrics.n

    def test_blob_ordering_invariants(self):
        metrics = compute_metrics(random_blob(90, seed=11))
        assert metrics.grid_diam <= metrics.area_diameter <= metrics.diameter
        assert metrics.l_max >= metrics.l_out
        assert metrics.n_area >= metrics.n

    def test_as_dict_keys(self):
        metrics = compute_metrics(hexagon(1))
        assert set(metrics.as_dict()) == {
            "n", "n_A", "D", "D_A", "D_G", "L_out", "L_max", "holes",
        }

    def test_disconnected_shape_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(Shape([(0, 0), (10, 10)]))

    def test_single_point_metrics(self):
        metrics = compute_metrics(Shape([(3, 3)]))
        assert metrics.n == 1
        assert metrics.diameter == 0
        assert metrics.l_out == 1
