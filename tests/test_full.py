"""Integration tests for the end-to-end election pipelines."""

import pytest

from repro.amoebot.system import ParticleSystem
from repro.core.full import elect_leader, elect_leader_known_boundary
from repro.grid.generators import (
    annulus,
    hexagon,
    hexagon_with_holes,
    line_shape,
    random_blob,
    random_holey_blob,
    spiral,
)
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

SHAPES = {
    "hexagon3": hexagon(3),
    "line10": line_shape(10),
    "annulus": annulus(5, 2),
    "holey_hexagon": hexagon_with_holes(7),
    "blob": random_blob(70, seed=6),
    "holey_blob": random_holey_blob(90, seed=4),
    "spiral": spiral(4, 3),
    "single": Shape([(0, 0)]),
}


class TestKnownBoundaryPipeline:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_elects_and_reconnects(self, name):
        system = ParticleSystem.from_shape(SHAPES[name], orientation_seed=1)
        outcome = elect_leader_known_boundary(system, reconnect=True, seed=1)
        assert outcome.leader_point is not None
        assert outcome.connected_after
        assert outcome.reconnected
        assert outcome.total_rounds == outcome.dle_rounds + outcome.collect_rounds
        assert outcome.obd_rounds == 0

    def test_without_reconnect_skips_collect(self):
        system = ParticleSystem.from_shape(SHAPES["hexagon3"], orientation_seed=2)
        outcome = elect_leader_known_boundary(system, reconnect=False, seed=2)
        assert outcome.collect_rounds == 0
        assert outcome.total_rounds == outcome.dle_rounds

    def test_stage_rounds_dictionary(self):
        system = ParticleSystem.from_shape(SHAPES["annulus"], orientation_seed=3)
        outcome = elect_leader_known_boundary(system, seed=3)
        stage = outcome.stage_rounds()
        assert set(stage) == {"obd", "dle", "collect", "total"}
        assert stage["total"] == outcome.total_rounds

    def test_bounded_by_theorem18_plus_theorem23(self):
        shape = SHAPES["holey_hexagon"]
        metrics = compute_metrics(shape)
        system = ParticleSystem.from_shape(shape, orientation_seed=4)
        outcome = elect_leader_known_boundary(system, seed=4)
        dle_bound = 10 * metrics.area_diameter + 6
        collect_bound = 5 * 58 * max(1, metrics.grid_diam) + 2 * 58
        assert outcome.dle_rounds <= dle_bound
        assert outcome.collect_rounds <= collect_bound


class TestFullPipeline:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_elects_and_reconnects_without_boundary_assumption(self, name):
        system = ParticleSystem.from_shape(SHAPES[name], orientation_seed=5)
        outcome = elect_leader(system, reconnect=True, seed=5)
        assert outcome.leader_point is not None
        assert outcome.connected_after
        assert outcome.total_rounds == (outcome.obd_rounds + outcome.dle_rounds
                                        + outcome.collect_rounds)
        assert outcome.obd_rounds > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_seed_determinism(self, seed):
        results = []
        for _ in range(2):
            system = ParticleSystem.from_shape(SHAPES["annulus"],
                                               orientation_seed=seed)
            outcome = elect_leader(system, seed=seed)
            results.append((outcome.total_rounds, outcome.leader_point))
        assert results[0] == results[1]

    def test_obd_rounds_dominated_by_lout_plus_d(self):
        shape = SHAPES["spiral"]
        metrics = compute_metrics(shape)
        system = ParticleSystem.from_shape(shape, orientation_seed=1)
        outcome = elect_leader(system, seed=1)
        assert outcome.obd_rounds <= 90 * (metrics.l_out + metrics.diameter) + 20

    def test_leader_is_unique_in_final_memory(self):
        from repro.amoebot.algorithm import STATUS_KEY, STATUS_LEADER
        system = ParticleSystem.from_shape(SHAPES["holey_blob"],
                                           orientation_seed=2)
        elect_leader(system, seed=2)
        leaders = [p for p in system.particles()
                   if p.get(STATUS_KEY) == STATUS_LEADER]
        assert len(leaders) == 1
