"""The packed-coordinate core: round-trips, branch-free arithmetic, rings."""

import pytest

from repro.grid import packed
from repro.grid.coords import DIRECTIONS, neighbor, neighbors, neighbors_interned


POINTS = [(0, 0), (1, -1), (-1, 1), (37, -12), (-2048, 4096),
          (123456, -654321), (-1, -1), (5, 5)]


class TestPackRoundTrip:
    @pytest.mark.parametrize("point", POINTS)
    def test_unpack_inverts_pack(self, point):
        assert packed.unpack(packed.pack_point(point)) == point
        assert packed.unpack(packed.pack(*point)) == point

    def test_pack_is_injective_on_a_region(self):
        region = [(q, r) for q in range(-40, 41) for r in range(-40, 41)]
        assert len({packed.pack_point(p) for p in region}) == len(region)

    def test_set_round_trip(self):
        points = set(POINTS)
        assert packed.unpack_points(packed.pack_points(points)) == points


class TestNeighborArithmetic:
    @pytest.mark.parametrize("point", POINTS)
    def test_packed_neighbors_match_tuple_neighbors(self, point):
        ring = packed.packed_neighbors(packed.pack_point(point))
        assert [packed.unpack(p) for p in ring] == neighbors(point)

    @pytest.mark.parametrize("direction", range(6))
    def test_packed_neighbor_single_direction(self, direction):
        origin = (7, -3)
        expected = neighbor(origin, direction)
        got = packed.packed_neighbor(packed.pack_point(origin), direction)
        assert packed.unpack(got) == expected

    def test_deltas_are_branch_free_sums(self):
        # Crossing the lane boundary in every direction must never carry.
        for point in POINTS:
            base = packed.pack_point(point)
            for direction, (dq, dr) in enumerate(DIRECTIONS):
                assert packed.unpack(base + packed.PACKED_DELTAS[direction]) \
                    == (point[0] + dq, point[1] + dr)

    def test_rings_are_interned(self):
        p = packed.pack_point((3, 3))
        assert packed.packed_neighbors(p) is packed.packed_neighbors(p)

    def test_ring_cache_clear(self):
        packed.packed_neighbors(packed.pack_point((9, 9)))
        packed.clear_ring_cache()
        assert packed.packed_neighbors(packed.pack_point((9, 9)))

class TestInternedTupleRings:
    def test_matches_neighbors_and_is_shared(self):
        point = (4, -4)
        ring = neighbors_interned(point)
        assert list(ring) == neighbors(point)
        assert neighbors_interned(point) is ring


class TestPackedGeometryMirrors:
    """The packed planning helpers must agree point for point with their
    tuple-world counterparts in repro.grid.coords."""

    POINTS = [(0, 0), (3, -2), (-7, 11), (25, -40)]

    def test_packed_translate_matches_translate(self):
        from repro.grid.coords import translate

        for point in self.POINTS:
            for direction in range(6):
                for steps in (0, 1, 2, 9):
                    expected = translate(point, direction, steps)
                    got = packed.unpack(packed.packed_translate(
                        packed.pack_point(point), direction, steps))
                    assert got == expected

    def test_packed_translate_normalises_directions_like_coords(self):
        # Direction names work and out-of-range indices are rejected —
        # the same contract as coords.translate, not a silent modulo.
        from repro.grid.coords import translate

        origin = packed.pack_point((0, 0))
        assert (packed.unpack(packed.packed_translate(origin, "E", 2))
                == translate((0, 0), "E", 2))
        with pytest.raises(ValueError, match="out of range"):
            packed.packed_translate(origin, 6, 1)
        with pytest.raises(ValueError, match="unknown direction"):
            packed.packed_translate(origin, "UP", 1)

    def test_packed_grid_distance_matches_grid_distance(self):
        from repro.grid.coords import grid_distance

        for a in self.POINTS:
            for b in self.POINTS:
                assert (packed.packed_grid_distance(packed.pack_point(a),
                                                    packed.pack_point(b))
                        == grid_distance(a, b))

    def test_packed_ring_matches_ring_order_exactly(self):
        from repro.grid.coords import ring

        for center in [(0, 0), (4, -9)]:
            for radius in range(0, 5):
                expected = ring(center, radius)
                got = [packed.unpack(p) for p in packed.packed_ring(
                    packed.pack_point(center), radius)]
                assert got == expected
        with pytest.raises(ValueError):
            packed.packed_ring(packed.pack_point((0, 0)), -1)
