"""Tests for the sweep dashboard: determinism, incrementality, the CLI.

The golden-file tests are the determinism contract stated in the module
docstring: the same ledger renders to byte-identical HTML and markdown,
run after run, machine after machine.  Regenerate the goldens after an
intentional rendering change with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_dashboard.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.analysis.dashboard import (
    DashboardBuilder,
    build_dashboard,
    render_dashboard_html,
    render_dashboard_markdown,
)
from repro.cli import main
from repro.orchestrator import RunConfig
from repro.orchestrator.store import RunLedger

from test_stream import append_run

GOLDEN_DIR = Path(__file__).parent / "golden"

FAULT_PLAN = "delay:rate=0.5,max=3;seed=4"

#: A frozen ``metrics.json`` document, as ``repro sweep --telemetry``
#: writes it.
METRICS_DOC = {
    "kind": "sweep-metrics",
    "spec": {"algorithms": ["dle", "erosion"], "sizes": [2, 3]},
    "metrics": {
        "cache": {"hits": 6, "misses": 10, "hit_rate": 0.375},
        "retries": 2,
        "reclaims": 1,
        "rounds": {"sweep": 1968, "local": 0},
        "counters": {"ledger.appends": 11},
    },
    "snapshot": {"counters": {}, "gauges": {}, "histograms": {}},
}

#: A frozen ``repro status`` document (queue transport, one live worker).
STATUS_DOC = {
    "kind": "repro-status",
    "source": "queue",
    "target": "work/queue",
    "board": {
        "pending": 3, "leased": 2, "done": 11,
        "lease_ages": {"count": 2, "p50": 1.25, "p90": 2.5, "max": 2.5},
        "leases": [],
        "throughput": {"completed": 11, "window": 60.0,
                       "per_second": 0.1833},
        "counters": {"queue.leases": 13, "queue.completions": 11},
    },
    "workers": [
        {"id": "w-1", "heartbeat_age": 0.75, "host": "node-a"},
        {"id": "w-2", "heartbeat_age": 4.5, "host": "node-b"},
    ],
    "stop": False,
    "coordinator": {"collected": 11, "enqueued": 16, "outstanding": 5},
}


def write_fixture_ledger(path):
    """A deterministic ledger with baselines, faults, and one failure."""
    ledger = RunLedger(path)
    rounds = {(2, 0): 40, (2, 1): 42, (3, 0): 90, (3, 1): 94}
    for (size, seed), value in sorted(rounds.items()):
        append_run(ledger, RunConfig("dle", "hexagon", size, seed), value,
                   elapsed=0.01 * value)
        append_run(ledger,
                   RunConfig("dle", "hexagon", size, seed,
                             faults=FAULT_PLAN),
                   value * 2, elapsed=0.02 * value)
    append_run(ledger, RunConfig("erosion", "hexagon", 2, 0), 61,
               elapsed=0.55)
    append_run(ledger, RunConfig("dle", "hexagon", 3, 9), 0,
               status="failed")
    # One faulty run that terminated with a WRONG answer: a violation.
    append_run(ledger, RunConfig("dle", "hexagon", 2, 7, faults=FAULT_PLAN),
               77, succeeded=False, terminated=True, elapsed=0.77)
    return ledger


def write_compare_ledger(path):
    """A slower baseline cohort for the comparison section."""
    ledger = RunLedger(path)
    for (size, seed), value in ((2, 0), 60), ((2, 1), 62), ((3, 0), 95):
        append_run(ledger, RunConfig("dle", "hexagon", size, seed), value,
                   elapsed=0.01 * value)
    return ledger


def build_fixture_dashboard(tmp_path):
    write_fixture_ledger(tmp_path / "runs.jsonl")
    write_compare_ledger(tmp_path / "base.jsonl")
    telemetry = tmp_path / "telemetry"
    telemetry.mkdir()
    (telemetry / "metrics.json").write_text(json.dumps(METRICS_DOC))
    return build_dashboard(tmp_path / "runs.jsonl", telemetry=telemetry,
                           status=STATUS_DOC,
                           compare_with=tmp_path / "base.jsonl")


def _check_golden(name, rendered):
    golden = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDENS"):
        golden.parent.mkdir(exist_ok=True)
        golden.write_text(rendered)
    expected = golden.read_text()
    assert rendered == expected, (
        f"{name} drifted from its golden; if the rendering change is "
        f"intentional, regenerate with REPRO_UPDATE_GOLDENS=1")


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

class TestGoldenDeterminism:
    def test_html_matches_golden_byte_for_byte(self, tmp_path):
        dash = build_fixture_dashboard(tmp_path)
        _check_golden("sweep_dashboard.html", render_dashboard_html(dash))

    def test_markdown_matches_golden_byte_for_byte(self, tmp_path):
        dash = build_fixture_dashboard(tmp_path)
        _check_golden("sweep_dashboard.md",
                      render_dashboard_markdown(dash))

    def test_two_independent_builds_render_identically(self, tmp_path):
        first = build_fixture_dashboard(tmp_path / "a")
        (tmp_path / "b").mkdir()
        second = build_fixture_dashboard(tmp_path / "b")
        assert render_dashboard_html(first) == render_dashboard_html(second)
        assert (render_dashboard_markdown(first)
                == render_dashboard_markdown(second))

    def test_no_absolute_paths_or_wallclock_leak(self, tmp_path):
        dash = build_fixture_dashboard(tmp_path)
        for rendered in (render_dashboard_html(dash),
                         render_dashboard_markdown(dash)):
            assert str(tmp_path) not in rendered
            assert "generated" not in rendered  # only with an explicit stamp

    def test_explicit_stamp_and_refresh_are_opt_in(self, tmp_path):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        dash = build_dashboard(tmp_path / "runs.jsonl",
                               generated="2026-08-08 12:00:00 UTC")
        html = render_dashboard_html(dash, refresh=2.0)
        assert "generated 2026-08-08 12:00:00 UTC" in html
        assert '<meta http-equiv="refresh" content="2">' in html
        markdown = render_dashboard_markdown(dash)
        assert "_generated 2026-08-08 12:00:00 UTC_" in markdown


# ---------------------------------------------------------------------------
# Content
# ---------------------------------------------------------------------------

class TestDashboardContent:
    def test_all_sections_present(self, tmp_path):
        dash = build_fixture_dashboard(tmp_path)
        markdown = render_dashboard_markdown(dash)
        for heading in ("## Progress",
                        "## Results by (algorithm, family, size)",
                        "## Cache & retries", "## Workers",
                        "## Guarantee survival",
                        "## Cohort comparison vs base.jsonl"):
            assert heading in markdown
        assert "cache hit rate:** 37.5%" in markdown
        assert "w-1" in markdown and "node-b" in markdown
        assert FAULT_PLAN in markdown
        assert "safety violations:** 1" in markdown
        # The coordinator feed renders a progress bar.
        assert "11/16 collected, 5 outstanding" in markdown

    def test_sections_without_sources_are_omitted(self, tmp_path):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        dash = build_dashboard(tmp_path / "runs.jsonl")
        markdown = render_dashboard_markdown(dash)
        assert "## Cache & retries" not in markdown
        assert "## Workers" not in markdown
        assert "## Cohort comparison" not in markdown
        assert "## Guarantee survival" in markdown  # faults in the ledger

    def test_fault_free_ledger_has_no_survival_section(self, tmp_path):
        write_compare_ledger(tmp_path / "runs.jsonl")
        dash = build_dashboard(tmp_path / "runs.jsonl")
        assert "## Guarantee survival" \
            not in render_dashboard_markdown(dash)

    def test_empty_ledger_renders_placeholder(self, tmp_path):
        (tmp_path / "runs.jsonl").write_text("")
        dash = build_dashboard(tmp_path / "runs.jsonl")
        assert "(no ledger entries yet)" in render_dashboard_markdown(dash)
        assert "(no ledger entries yet)" in render_dashboard_html(dash)

    def test_html_escapes_untrusted_strings(self, tmp_path):
        write_compare_ledger(tmp_path / "runs.jsonl")
        dash = build_dashboard(tmp_path / "runs.jsonl",
                               title="<script>alert(1)</script>")
        html = render_dashboard_html(dash)
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html


# ---------------------------------------------------------------------------
# Incremental refresh (the --watch engine)
# ---------------------------------------------------------------------------

class TestDashboardBuilder:
    def test_refresh_folds_only_the_new_tail(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        append_run(ledger, RunConfig("dle", "hexagon", 2, 0), 40)
        builder = DashboardBuilder(path)
        first = builder.refresh()
        assert first.aggregator.entries == 1
        # The sweep appends while the watcher sleeps...
        append_run(ledger, RunConfig("dle", "hexagon", 2, 1), 44)
        append_run(ledger, RunConfig("dle", "hexagon", 3, 0), 90)
        second = builder.refresh()
        assert second.aggregator.entries == 3
        assert len(second.aggregator) == 2
        # ...and an idle tick folds nothing but still renders.
        third = builder.refresh()
        assert third.aggregator.entries == 3

    def test_watch_over_a_not_yet_created_ledger(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        builder = DashboardBuilder(path)
        assert builder.refresh().aggregator.entries == 0
        append_run(RunLedger(path), RunConfig("dle", "hexagon", 2, 0), 40)
        assert builder.refresh().aggregator.entries == 1


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------

class TestDashboardCli:
    def test_renders_html_and_markdown_files(self, tmp_path, capsys):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        out = tmp_path / "sweep.html"
        md = tmp_path / "sweep.md"
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--out", str(out), "--markdown", str(md)])
        assert code == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "Results by (algorithm, family, size)" in html
        assert "## Guarantee survival" in md.read_text()

    def test_markdown_to_stdout(self, tmp_path, capsys):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--out", str(tmp_path / "sweep.html"), "--markdown"])
        assert code == 0
        assert "# Sweep dashboard — runs.jsonl" in capsys.readouterr().out

    def test_compare_and_group_by_flags(self, tmp_path, capsys):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        write_compare_ledger(tmp_path / "base.jsonl")
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--compare", str(tmp_path / "base.jsonl"),
                     "--group-by", "algorithm", "size",
                     "--out", str(tmp_path / "sweep.html"), "--markdown"])
        assert code == 0
        output = capsys.readouterr().out
        assert "## Results by (algorithm, size)" in output
        assert "## Cohort comparison vs base.jsonl" in output

    def test_missing_ledger_is_an_error_without_watch(self, tmp_path,
                                                      capsys):
        code = main(["dashboard", "--ledger", str(tmp_path / "nope.jsonl"),
                     "--out", str(tmp_path / "sweep.html")])
        assert code == 2
        assert "no ledger" in capsys.readouterr().err

    def test_ticks_requires_watch(self, tmp_path, capsys):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--ticks", "2",
                     "--out", str(tmp_path / "sweep.html")])
        assert code == 2
        assert "--ticks requires --watch" in capsys.readouterr().err

    def test_watch_with_ticks_terminates_and_publishes(self, tmp_path):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        out = tmp_path / "sweep.html"
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--watch", "0.01", "--ticks", "2",
                     "--out", str(out)])
        assert code == 0
        # The watch variant embeds the browser-side refresh.
        assert '<meta http-equiv="refresh" content="1">' in out.read_text()

    def test_stamp_embeds_a_timestamp(self, tmp_path):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        out = tmp_path / "sweep.html"
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--stamp", "--out", str(out)])
        assert code == 0
        assert "generated " in out.read_text()

    def test_rejects_two_status_sources(self, tmp_path, capsys):
        write_fixture_ledger(tmp_path / "runs.jsonl")
        code = main(["dashboard", "--ledger", str(tmp_path / "runs.jsonl"),
                     "--coordinator", "localhost:1", "--queue-dir",
                     str(tmp_path), "--out", str(tmp_path / "sweep.html")])
        assert code == 2
        assert "at most one" in capsys.readouterr().err
