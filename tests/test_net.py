"""Tests for the TCP coordinator/worker transport (`repro.orchestrator.net`).

Workers run as plain threads (``run_tcp_worker`` is a pure pull loop over a
socket), so monkeypatched algorithm registries are visible to them and the
failure scenarios — killed workers, coordinator restarts, bad secrets —
stay fast and deterministic; CLI tests cover the ``serve`` / ``worker
--connect`` / ``sweep --transport tcp`` entry points.
"""

import json
import socket
import threading
import time

import pytest

from repro.analysis import experiments
from repro.cli import main
from repro.io import records_to_dicts
from repro.orchestrator import (
    CoordinatorClient,
    CoordinatorServer,
    RunConfig,
    RunLedger,
    SweepSpec,
    TcpTransport,
    config_digest,
    default_code_version,
    run_sweep,
    run_tcp_worker,
)
from repro.orchestrator.net import HandshakeError, TaskBoard, parse_address
from repro.orchestrator.queue import FileTaskQueue

CONFIG = RunConfig(algorithm="dle", family="hexagon", size=2, seed=0)
SPEC = SweepSpec(algorithms=["dle", "erosion"], families=["hexagon"],
                 sizes=[2, 3], seeds=[0])


def _digest(config):
    return config_digest(config, default_code_version())


def _task_id(config, index=0):
    return FileTaskQueue.task_id(index, _digest(config))


def _start_worker(address, **kwargs):
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("max_idle", 20.0)
    thread = threading.Thread(target=run_tcp_worker, args=(address,),
                              kwargs=kwargs, daemon=True)
    thread.start()
    return thread


def _free_port():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


# ---------------------------------------------------------------------------
# The in-memory task board
# ---------------------------------------------------------------------------

class TestTaskBoard:
    def test_claim_is_exclusive_and_ordered(self):
        board = TaskBoard()
        second = RunConfig("dle", "hexagon", 3, 0)
        board.enqueue(_task_id(second, 1), second.to_dict(), _digest(second))
        board.enqueue(_task_id(CONFIG, 0), CONFIG.to_dict(), _digest(CONFIG))
        task = board.claim("w0")
        assert task["id"] == _task_id(CONFIG, 0)  # lowest index first
        assert task["config"] == CONFIG.to_dict()
        other = board.claim("w1")
        assert other is not None and other["id"] != task["id"]
        assert board.claim("w2") is None  # both leased now

    def test_enqueue_deduplicates_and_retries_failures(self):
        board = TaskBoard()
        task_id = _task_id(CONFIG)
        assert board.enqueue(task_id, CONFIG.to_dict(),
                             _digest(CONFIG)) == "enqueued"
        assert board.enqueue(task_id, CONFIG.to_dict(),
                             _digest(CONFIG)) == "pending"
        board.claim("w0")
        assert board.enqueue(task_id, CONFIG.to_dict(),
                             _digest(CONFIG)) == "pending"  # leased
        board.complete("w0", task_id, {"record": {"fake": True}})
        assert board.enqueue(task_id, CONFIG.to_dict(),
                             _digest(CONFIG)) == "result-exists"

    def test_failed_result_is_not_a_cache(self):
        board = TaskBoard()
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG),
                      max_attempts=1)
        board.claim("w0")
        assert board.complete("w0", task_id, {"error": "boom"}) == "done"
        assert "error" in board.collect([task_id])[0]
        # Re-enqueueing retries the failure from a zeroed attempt count.
        assert board.enqueue(task_id, CONFIG.to_dict(),
                             _digest(CONFIG)) == "enqueued"
        assert board.collect([task_id]) == []
        assert board.claim("w1")["attempt"] == 0

    def test_reclaim_requeues_stale_lease_with_attempt_bump(self):
        board = TaskBoard(lease_ttl=30.0)
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG))
        board.claim("w0", now=100.0)
        assert board.reclaim_stale(now=110.0) == []  # lease still fresh
        assert board.reclaim_stale(now=200.0) == [task_id]
        task = board.claim("w1", now=200.0)
        assert task["attempt"] == 1

    def test_heartbeat_extends_the_lease(self):
        board = TaskBoard(lease_ttl=30.0)
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG))
        board.claim("w0", now=100.0)
        assert board.heartbeat("w0", task_id, now=125.0)
        assert board.reclaim_stale(now=140.0) == []  # extended past 130
        assert not board.heartbeat("other", task_id)  # not the owner

    def test_reclaim_fails_task_when_budget_spent(self):
        board = TaskBoard(lease_ttl=10.0)
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG),
                      max_attempts=2)
        for attempt in (1, 2):
            assert board.claim(f"w{attempt}", now=attempt * 100.0) is not None
            assert board.reclaim_stale(now=attempt * 100.0 + 50) == [task_id]
        (payload,) = board.collect([task_id])
        assert "out of attempts (2/2)" in payload["error"]
        assert payload["attempt"] == 2
        assert board.claim("w3") is None

    def test_failure_never_overwrites_a_successful_result(self):
        board = TaskBoard(lease_ttl=10.0)
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG))
        board.claim("w0", now=0.0)
        # The lease is reclaimed (w0 presumed dead) and re-run by w1...
        board.reclaim_stale(now=100.0)
        board.claim("w1", now=100.0)
        assert board.complete("w1", task_id,
                              {"record": {"rounds": 7}}) == "done"
        # ...then the presumed-dead worker reports late outcomes: ignored.
        assert board.complete("w0", task_id, {"error": "late"}) == "ignored"
        assert board.complete("w0", task_id,
                              {"record": {"rounds": 9}}) == "ignored"
        (payload,) = board.collect([task_id])
        assert payload["record"] == {"rounds": 7}

    def test_late_failure_from_reclaimed_lease_burns_no_budget(self):
        board = TaskBoard(lease_ttl=10.0)
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG),
                      max_attempts=3)
        board.claim("w0", now=0.0)
        board.reclaim_stale(now=100.0)  # attempt -> 1, re-pending
        assert board.complete("w0", task_id, {"error": "late"}) == "ignored"
        assert board.claim("w1", now=100.0)["attempt"] == 1  # unchanged

    def test_record_for_unknown_task_is_kept(self):
        # A coordinator restart empties the board; a worker finishing a
        # pre-restart task must not have its work dropped.
        board = TaskBoard()
        assert board.complete("w0", "000000-dead",
                              {"record": {"rounds": 3}}) == "done"
        assert board.collect(["000000-dead"])[0]["record"] == {"rounds": 3}
        assert board.complete("w0", "000001-dead",
                              {"error": "boom"}) == "ignored"

    def test_results_are_pruned_after_the_result_ttl(self):
        # A long-lived coordinator's memory is bounded: results nobody
        # collects within result_ttl are dropped (queue-gc's in-memory
        # analog); collecting refreshes the clock.
        board = TaskBoard(result_ttl=100.0)
        kept, pruned = _task_id(CONFIG, 0), _task_id(CONFIG, 1)
        for task_id in (kept, pruned):
            board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG))
            board.claim("w0", now=0.0)
            board.complete("w0", task_id, {"record": {"rounds": 1}})
        start = time.monotonic()
        board._result_times[kept] = start - 120.0
        board._result_times[pruned] = start - 120.0
        board.collect([kept])  # refreshes kept's clock to ~start
        board.reclaim_stale(now=start + 50.0)  # pruned is 170s old, kept 50s
        assert [p["id"] for p in board.collect([kept, pruned])] == [kept]

    def test_zero_max_attempts_means_unlimited(self):
        board = TaskBoard(lease_ttl=10.0)
        task_id = _task_id(CONFIG)
        board.enqueue(task_id, CONFIG.to_dict(), _digest(CONFIG),
                      max_attempts=0)
        for attempt in range(1, 6):  # far past the default of 3
            assert board.claim("w0", now=attempt * 100.0) is not None
            assert board.reclaim_stale(
                now=attempt * 100.0 + 50) == [task_id]
        assert board.collect([task_id]) == []  # never failed out


# ---------------------------------------------------------------------------
# Address parsing
# ---------------------------------------------------------------------------

class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("example.org:7000") == ("example.org", 7000)

    def test_bare_port_defaults_to_localhost(self):
        assert parse_address(":7000") == ("127.0.0.1", 7000)
        assert parse_address("7000") == ("127.0.0.1", 7000)

    def test_invalid(self):
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_address("example.org:port")


# ---------------------------------------------------------------------------
# The shared-secret handshake
# ---------------------------------------------------------------------------

class TestHandshake:
    def test_bad_secret_is_rejected_for_workers_and_submitters(self):
        with CoordinatorServer(port=0, secret="right") as server:
            with pytest.raises(HandshakeError, match="bad shared secret"):
                run_tcp_worker(server.endpoint, secret="wrong", max_idle=5)
            with pytest.raises(HandshakeError, match="bad shared secret"):
                run_sweep(SPEC, transport=TcpTransport(
                    server.endpoint, secret="wrong", timeout=5))
            # Missing secret is rejected the same way.
            with pytest.raises(HandshakeError, match="bad shared secret"):
                CoordinatorClient(server.endpoint).connect()

    def test_matching_secret_is_accepted(self):
        with CoordinatorServer(port=0, secret="s3cret") as server:
            client = CoordinatorClient(server.endpoint,
                                       secret="s3cret").connect()
            assert client.request({"op": "ping"})["ok"]
            client.close()

    def test_unauthenticated_server_ignores_the_secret(self):
        with CoordinatorServer(port=0) as server:
            client = CoordinatorClient(server.endpoint,
                                       secret="anything").connect()
            assert client.request({"op": "ping"})["ok"]
            client.close()

    def test_connecting_to_a_non_coordinator_fails_cleanly(self):
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        try:
            address = f"127.0.0.1:{listener.getsockname()[1]}"
            with pytest.raises((HandshakeError, OSError)):
                CoordinatorClient(address, timeout=0.5).connect()
        finally:
            listener.close()


# ---------------------------------------------------------------------------
# The transport, end to end
# ---------------------------------------------------------------------------

class TestTcpTransport:
    def test_two_workers_match_jobs1_reference(self, tmp_path):
        reference = RunLedger(tmp_path / "reference.jsonl")
        expected = run_sweep(SPEC, jobs=1, ledger=reference)

        with CoordinatorServer(port=0, secret="s") as server:
            workers = [_start_worker(server.endpoint, secret="s",
                                     worker_id=f"w{i}") for i in range(2)]
            ledger = RunLedger(tmp_path / "tcp.jsonl")
            transport = TcpTransport(server.endpoint, secret="s", poll=0.02,
                                     workers_expected=2, worker_timeout=30,
                                     timeout=120)
            result = run_sweep(SPEC, transport=transport, ledger=ledger)
            server.stop_workers()
            for worker in workers:
                worker.join(timeout=30)

        assert result.counts()["executed"] == len(SPEC.expand())
        # Same digests, same record payloads, spec order preserved.
        assert ([e["digest"] for e in reference.entries()]
                == [e["digest"] for e in ledger.entries()])
        assert (records_to_dicts(reference.records())
                == records_to_dicts(ledger.records()))
        assert (records_to_dicts(expected.records)
                == records_to_dicts(result.records))

    def test_killed_worker_lease_is_reclaimed_mid_sweep(self, tmp_path):
        # A worker that claims a task and is then SIGKILLed never
        # heartbeats: after lease_ttl the coordinator hands the task to a
        # surviving worker and the ledger still matches a jobs=1 run.
        reference = RunLedger(tmp_path / "reference.jsonl")
        run_sweep(SPEC, jobs=1, ledger=reference)

        with CoordinatorServer(port=0, lease_ttl=0.5) as server:
            # The "killed" worker: claims whatever is pending first and
            # goes silent without ever publishing or heartbeating.
            dead = CoordinatorClient(server.endpoint, role="worker",
                                     worker_id="doomed").connect()
            configs = SPEC.expand()
            victim_id = _task_id(configs[0], 0)
            server.board.enqueue(victim_id, configs[0].to_dict(),
                                 _digest(configs[0]))
            claimed = dead.request({"op": "claim"})["task"]
            assert claimed["id"] == victim_id

            survivor = _start_worker(server.endpoint, worker_id="survivor")
            ledger = RunLedger(tmp_path / "tcp.jsonl")
            transport = TcpTransport(server.endpoint, poll=0.02, timeout=120)
            result = run_sweep(SPEC, transport=transport, ledger=ledger)
            dead.close()
            victim_result = server.board.collect([victim_id])[0]
            server.stop_workers()
            survivor.join(timeout=30)

        assert not result.failures
        assert ([e["digest"] for e in reference.entries()]
                == [e["digest"] for e in ledger.entries()])
        assert (records_to_dicts(reference.records())
                == records_to_dicts(ledger.records()))
        # The reclaim really consumed an attempt before the re-run.
        assert victim_result["attempt"] >= 1
        assert victim_result["worker"] == "survivor"

    def test_retry_budget_exhaustion_surfaces_as_gave_up(self, tmp_path,
                                                         monkeypatch):
        calls = {"n": 0}

        def always_fails(shape, seed, order="random", engine="sweep"):
            calls["n"] += 1
            raise RuntimeError("deterministic tcp failure")

        monkeypatch.setitem(experiments.ALGORITHMS, "bad", always_fails)
        spec = SweepSpec(algorithms=["bad"], families=["hexagon"], sizes=[2])
        with CoordinatorServer(port=0) as server:
            worker = _start_worker(server.endpoint, worker_id="w0",
                                   max_idle=0.5)
            ledger = RunLedger(tmp_path / "ledger.jsonl")
            transport = TcpTransport(server.endpoint, poll=0.02,
                                     max_attempts=3, timeout=60)
            result = run_sweep(spec, transport=transport, ledger=ledger,
                               max_attempts=3)
            worker.join(timeout=30)
            assert calls["n"] == 3  # the workers consumed the whole budget
            assert result.counts()["failed"] == 1
            assert "deterministic tcp failure" in result.failures[0].error
            (digest, entry), = ledger.failures().items()
            assert entry["attempts"] == 3
            # A resumed sweep refuses to spend more executions on it.
            resumed = run_sweep(spec,
                                transport=TcpTransport(server.endpoint,
                                                       timeout=5),
                                ledger=ledger, resume=True, max_attempts=3)
        assert calls["n"] == 3  # gave up immediately, nothing re-ran
        assert resumed.counts()["gave-up"] == 1

    def test_coordinator_restart_workers_reconnect(self, tmp_path,
                                                   monkeypatch):
        # Stop the coordinator mid-sweep and bring a fresh one up on the
        # same port: workers reconnect with backoff, the transport
        # re-submits what is still pending, and the sweep completes.
        def slow_dle(shape, seed, order="random", engine="sweep"):
            time.sleep(0.05)
            return {"rounds": 1, "succeeded": True}

        monkeypatch.setitem(experiments.ALGORITHMS, "slowdle", slow_dle)
        spec = SweepSpec(algorithms=["slowdle"], families=["hexagon"],
                         sizes=[2, 3, 4], seeds=[0, 1, 2])
        port = _free_port()
        address = f"127.0.0.1:{port}"
        first = CoordinatorServer(port=port).start()
        workers = [_start_worker(address, worker_id=f"w{i}", max_idle=60)
                   for i in range(2)]
        holder = {}

        def sweep():
            transport = TcpTransport(address, poll=0.02, timeout=120)
            holder["result"] = run_sweep(spec, transport=transport)

        thread = threading.Thread(target=sweep, daemon=True)
        thread.start()
        time.sleep(0.4)  # let some tasks finish on the first coordinator
        first.stop()
        time.sleep(0.3)  # workers and transport are now reconnecting
        second = CoordinatorServer(port=port).start()
        try:
            thread.join(timeout=120)
            assert not thread.is_alive(), "sweep did not survive the restart"
            second.stop_workers()
            for worker in workers:
                worker.join(timeout=30)
        finally:
            second.stop()
        result = holder["result"]
        assert not result.failures
        assert result.counts()["executed"] == len(spec.expand())

    def test_results_are_cached_and_resumable(self, tmp_path):
        with CoordinatorServer(port=0) as server:
            worker = _start_worker(server.endpoint, worker_id="w0",
                                   max_idle=1.0)
            transport = TcpTransport(server.endpoint, poll=0.02, timeout=120)
            cache_dir = tmp_path / "cache"
            ledger_path = tmp_path / "ledger.jsonl"
            cold = run_sweep(SPEC, transport=transport, cache=cache_dir,
                             ledger=ledger_path)
            worker.join(timeout=30)
            assert cold.counts()["executed"] == len(SPEC.expand())
            # Warm again through the cache (no workers needed at all) and
            # through the ledger (resume).
            warm = run_sweep(SPEC, cache=cache_dir,
                             transport=TcpTransport(server.endpoint,
                                                    timeout=5))
            assert warm.counts()["cached"] == len(SPEC.expand())
            resumed = run_sweep(SPEC, ledger=ledger_path, resume=True,
                                transport=TcpTransport(server.endpoint,
                                                       timeout=5))
            assert resumed.counts()["resumed"] == len(SPEC.expand())

    def test_max_tasks_worker_redelivers_its_last_result_first(
            self, monkeypatch):
        # A --max-tasks worker whose final publish hits a dead link must
        # redeliver after reconnecting, not exit and discard the work.
        def slow(shape, seed, order="random", engine="sweep"):
            time.sleep(0.6)
            return {"rounds": 5, "succeeded": True}

        monkeypatch.setitem(experiments.ALGORITHMS, "slownet", slow)
        config = RunConfig("slownet", "hexagon", 2, 0)
        port = _free_port()
        address = f"127.0.0.1:{port}"
        first = CoordinatorServer(port=port).start()
        task_id = _task_id(config)
        first.board.enqueue(task_id, config.to_dict(), _digest(config))
        holder = {}

        def worker():
            holder["processed"] = run_tcp_worker(address, worker_id="w0",
                                                 poll=0.02, max_tasks=1,
                                                 max_idle=30)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        # Wait until the task is claimed (it then executes for ~0.6s),
        # yank the coordinator so the result publish fails, and bring up
        # a fresh (empty) board on the same port.
        deadline = time.monotonic() + 10
        while first.board.stats()["leased"] == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.01)
        first.stop()
        second = CoordinatorServer(port=port).start()
        try:
            thread.join(timeout=60)
            assert not thread.is_alive()
            assert holder["processed"] == 1
            # The record landed on the restarted coordinator's board.
            (payload,) = second.board.collect([task_id])
            assert payload["record"]["rounds"] == 5
        finally:
            second.stop()

    def test_stop_broadcast_halts_idle_workers(self):
        # The TCP analog of touching STOP in a queue directory.
        with CoordinatorServer(port=0) as server:
            workers = [_start_worker(server.endpoint, worker_id=f"w{i}",
                                     max_idle=60.0) for i in range(2)]
            deadline = time.monotonic() + 10
            while (len(server.live_workers()) < 2
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            server.stop_workers()
            for worker in workers:
                worker.join(timeout=10)
                assert not worker.is_alive()

    def test_workers_expected_fails_fast_without_workers(self):
        with CoordinatorServer(port=0) as server:
            transport = TcpTransport(server.endpoint, workers_expected=1,
                                     worker_timeout=0.2, poll=0.02)
            with pytest.raises(RuntimeError, match="0 of 1 expected"):
                run_sweep(SPEC, transport=transport)

    def test_timeout_bounds_the_wait(self):
        with CoordinatorServer(port=0) as server:
            transport = TcpTransport(server.endpoint, timeout=0.3, poll=0.02)
            with pytest.raises(TimeoutError, match="unfinished"):
                run_sweep(SPEC, transport=transport)

    def test_unreachable_coordinator_fails_with_guidance(self):
        port = _free_port()
        transport = TcpTransport(f"127.0.0.1:{port}", timeout=5)
        with pytest.raises(ConnectionError, match="repro serve"):
            run_sweep(SPEC, transport=transport)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_sweep_tcp_requires_coordinator(self, capsys):
        assert main(["sweep", "--transport", "tcp"]) == 2
        assert "--coordinator" in capsys.readouterr().err

    def test_coordinator_requires_tcp_transport(self, capsys):
        assert main(["sweep", "--coordinator", "localhost:1"]) == 2
        assert "--transport tcp" in capsys.readouterr().err

    def test_worker_needs_exactly_one_backend(self, capsys):
        assert main(["worker"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["worker", "/tmp/q", "--connect", "h:1"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_worker_connect_command_runs_and_exits(self, capsys):
        with CoordinatorServer(port=0) as server:
            server.board.enqueue(_task_id(CONFIG), CONFIG.to_dict(),
                                 _digest(CONFIG))
            code = main(["worker", "--connect", server.endpoint,
                         "--poll", "0.02", "--max-idle", "0.3"])
            assert code == 0
            err = capsys.readouterr().err
            assert "exiting after 1 task(s)" in err
            (payload,) = server.board.collect([_task_id(CONFIG)])
            assert payload["record"]["rounds"] > 0

    def test_worker_connect_bad_secret_exits_nonzero(self, capsys):
        with CoordinatorServer(port=0, secret="right") as server:
            code = main(["worker", "--connect", server.endpoint,
                         "--secret", "wrong", "--max-idle", "5"])
        assert code == 1
        assert "bad shared secret" in capsys.readouterr().err

    def test_cli_tcp_sweep_end_to_end(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SECRET", "env-secret")
        with CoordinatorServer(port=0, secret="env-secret") as server:
            worker = _start_worker(server.endpoint, secret="env-secret",
                                   worker_id="cli-w", max_idle=5.0)
            summary_path = tmp_path / "summary.json"
            code = main(["sweep", "--algorithms", "dle", "--families",
                         "hexagon", "--sizes", "2", "--quiet",
                         "--transport", "tcp",
                         "--coordinator", server.endpoint,
                         "--workers-expected", "1", "--worker-timeout", "30",
                         "--queue-timeout", "120",
                         "--summary-json", str(summary_path)])
            server.stop_workers()
            worker.join(timeout=30)
        assert code == 0
        counts = json.loads(summary_path.read_text())["counts"]
        assert counts["executed"] == 1 and counts["failed"] == 0
