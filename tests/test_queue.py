"""Tests for the filesystem task queue and the distributed queue transport.

Workers run as plain threads here (``run_worker`` is a pure pull loop), so
monkeypatched algorithm registries are visible to them and the tests stay
fast and deterministic; one CLI test covers the ``python -m repro worker``
entry point itself.
"""

import json
import os
import threading
import time

import pytest

from repro.analysis import experiments
from repro.cli import main
from repro.io import records_to_dicts
from repro.orchestrator import (
    FileTaskQueue,
    QueueTransport,
    RunConfig,
    RunLedger,
    SweepSpec,
    config_digest,
    default_code_version,
    run_sweep,
    run_worker,
)

CONFIG = RunConfig(algorithm="dle", family="hexagon", size=2, seed=0)
SPEC = SweepSpec(algorithms=["dle", "erosion"], families=["hexagon"],
                 sizes=[2, 3], seeds=[0])


def _digest(config):
    return config_digest(config, default_code_version())


def _enqueue(queue, config, index=0, **kwargs):
    task_id = queue.task_id(index, _digest(config))
    status = queue.enqueue(task_id, config.to_dict(), _digest(config),
                           **kwargs)
    return task_id, status


def _start_worker(queue_dir, **kwargs):
    kwargs.setdefault("poll", 0.02)
    kwargs.setdefault("max_idle", 20.0)
    thread = threading.Thread(target=run_worker, args=(queue_dir,),
                              kwargs=kwargs, daemon=True)
    thread.start()
    return thread


# ---------------------------------------------------------------------------
# The on-disk queue primitives
# ---------------------------------------------------------------------------

class TestFileTaskQueue:
    def test_claim_is_exclusive_and_ordered(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        second = RunConfig("dle", "hexagon", 3, 0)
        _enqueue(queue, second, index=1)
        _enqueue(queue, CONFIG, index=0)
        task_id, payload = queue.claim()
        assert task_id == queue.task_id(0, _digest(CONFIG))  # lowest index
        assert payload["config"] == CONFIG.to_dict()
        other = queue.claim()
        assert other is not None and other[0] != task_id
        assert queue.claim() is None  # both leased now

    def test_enqueue_deduplicates_and_retries_failures(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        task_id, status = _enqueue(queue, CONFIG)
        assert status == "enqueued"
        assert _enqueue(queue, CONFIG)[1] == "pending"  # already queued
        queue.claim()
        assert _enqueue(queue, CONFIG)[1] == "pending"  # leased
        queue.complete(task_id, {"record": {"fake": True}})
        assert _enqueue(queue, CONFIG)[1] == "result-exists"
        # A failed result is not a cache: it is deleted and re-enqueued.
        queue.result_path(task_id).write_text(
            json.dumps({"kind": "sweep-task-result", "error": "boom"}))
        assert _enqueue(queue, CONFIG)[1] == "enqueued"
        assert not queue.result_path(task_id).exists()

    def test_reclaim_requeues_stale_lease_with_attempt_bump(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=30.0)
        task_id, _ = _enqueue(queue, CONFIG)
        queue.claim()
        assert queue.reclaim_stale() == []  # lease is fresh
        stale = time.time() - 120
        os.utime(queue.lease_path(task_id), (stale, stale))
        assert queue.reclaim_stale() == [task_id]
        assert queue.task_path(task_id).exists()
        assert not queue.lease_path(task_id).exists()
        _, payload = queue.claim()
        assert payload["attempt"] == 1

    def test_reclaim_fails_task_when_budget_spent(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=30.0)
        task_id, _ = _enqueue(queue, CONFIG, max_attempts=2)
        for expected_attempt in (1, 2):
            queue.claim()
            stale = time.time() - 120
            os.utime(queue.lease_path(task_id), (stale, stale))
            assert queue.reclaim_stale() == [task_id]
            if expected_attempt < 2:
                assert queue.task_path(task_id).exists()
        result = json.loads(queue.result_path(task_id).read_text())
        assert "out of attempts (2/2)" in result["error"]
        assert queue.claim() is None

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=0.2)
        task_id, _ = _enqueue(queue, CONFIG)
        queue.claim()
        time.sleep(0.3)
        queue.touch_lease(task_id)
        assert queue.reclaim_stale() == []

    def test_claim_restarts_the_lease_clock(self, tmp_path):
        # Regression: rename() preserves mtime, so a task that waited in
        # the queue longer than the TTL used to produce a lease that was
        # stale the moment it was claimed.
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=30.0)
        task_id, _ = _enqueue(queue, CONFIG)
        old = time.time() - 300
        os.utime(queue.task_path(task_id), (old, old))
        assert queue.claim() is not None
        assert queue.reclaim_stale() == []  # freshly claimed, not stale

    def test_failure_never_overwrites_a_successful_result(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        task_id, _ = _enqueue(queue, CONFIG)
        queue.claim()
        queue.complete(task_id, {"record": {"rounds": 7}})
        # A late reclaimer (or losing duplicate run) reports a failure...
        queue.complete(task_id, {"error": "lease expired"})
        payload = json.loads(queue.result_path(task_id).read_text())
        assert payload["record"] == {"rounds": 7} and "error" not in payload

    def test_orphaned_reclaim_file_is_recovered(self, tmp_path):
        # A reclaimer that dies between renaming the stale lease away and
        # re-enqueueing must not strand the task forever.
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=0.2)
        task_id, _ = _enqueue(queue, CONFIG)
        queue.claim()
        orphan = queue.leases / ".deadbeef.reclaim"
        os.rename(queue.lease_path(task_id), orphan)
        stale = time.time() - 60
        os.utime(orphan, (stale, stale))
        assert queue.reclaim_stale() == [task_id]
        assert queue.task_path(task_id).exists()
        assert not orphan.exists()
        _, payload = queue.claim()
        assert payload["attempt"] == 1

    def test_unreadable_task_becomes_a_failed_result(self, tmp_path):
        # A torn/empty task file (host crash before the data hit disk)
        # must terminate as a failure the coordinator can consume, not
        # vanish and hang the sweep forever.
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        (queue.tasks / "000000-deadbeef.json").write_text("")
        assert queue.claim() is None
        payload = json.loads(
            queue.result_path("000000-deadbeef").read_text())
        assert "unreadable task payload" in payload["error"]
        assert not queue.lease_path("000000-deadbeef").exists()

    def test_zero_max_attempts_means_unlimited(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=30.0)
        task_id, _ = _enqueue(queue, CONFIG, max_attempts=0)
        for expected_attempt in range(1, 6):  # far past the default of 3
            queue.claim()
            stale = time.time() - 120
            os.utime(queue.lease_path(task_id), (stale, stale))
            assert queue.reclaim_stale() == [task_id]
            assert queue.task_path(task_id).exists()  # requeued, not failed
        assert not queue.result_path(task_id).exists()


# ---------------------------------------------------------------------------
# Queue-directory garbage collection
# ---------------------------------------------------------------------------

class TestQueueGc:
    def test_reclaim_then_gc_sequence(self, tmp_path):
        """A dead worker's lease is first *reclaimed* (the task survives,
        attempt bumped), and only queue byproducts are pruned by gc."""
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=0.05)
        task_id, _ = _enqueue(queue, CONFIG)
        claimed = queue.claim()
        assert claimed is not None and claimed[0] == task_id
        # The claiming worker "dies": no heartbeat, lease goes stale.
        time.sleep(0.08)
        counts = queue.gc(ttl=3600.0)
        assert counts["reclaimed"] == 1
        # The reclaim re-enqueued the task with its attempt bumped.
        payload = json.loads(queue.task_path(task_id).read_text())
        assert payload["attempt"] == 1
        assert not queue.lease_path(task_id).exists()
        # Nothing else was pruned: the pending task file must survive gc.
        assert queue.task_path(task_id).exists()

    def test_gc_prunes_old_results_workers_and_stop(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        queue.complete("000001-old", {"record": {"x": 1}})
        queue.complete("000002-failed", {"error": "boom", "attempt": 3})
        queue.complete("000003-new", {"record": {"x": 2}})
        (queue.workers / "dead.json").write_text("{}")
        (queue.root / "STOP").write_text("")
        fresh = queue.result_path("000003-new")
        old = time.time() - 7200
        for path in (queue.result_path("000001-old"),
                     queue.result_path("000002-failed"),
                     queue.workers / "dead.json",
                     queue.root / "STOP"):
            os.utime(path, (old, old))
        counts = queue.gc(ttl=3600.0)
        assert counts == {"reclaimed": 0, "results": 2, "workers": 1,
                          "stop": 1}
        assert not queue.result_path("000001-old").exists()
        assert not queue.result_path("000002-failed").exists()
        assert fresh.exists()  # younger than the ttl
        assert not (queue.root / "STOP").exists()

    def test_gc_respects_no_reclaim(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q", lease_ttl=0.05)
        task_id, _ = _enqueue(queue, CONFIG)
        queue.claim()
        time.sleep(0.08)
        counts = queue.gc(ttl=3600.0, reclaim=False)
        assert counts["reclaimed"] == 0
        assert queue.lease_path(task_id).exists()

    def test_cli_queue_gc(self, tmp_path, capsys):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        queue.complete("000001-x", {"record": {}})
        old = time.time() - 7200
        os.utime(queue.result_path("000001-x"), (old, old))
        out = tmp_path / "gc.json"
        code = main(["queue-gc", str(tmp_path / "q"), "--ttl", "3600",
                     "--json", str(out)])
        assert code == 0
        assert "1 result(s) pruned" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["counts"]["results"] == 1


# ---------------------------------------------------------------------------
# The worker daemon loop
# ---------------------------------------------------------------------------

class TestWorker:
    def test_worker_drains_queue_and_exits_on_idle(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        ids = []
        for index, size in enumerate([2, 3]):
            config = RunConfig("dle", "hexagon", size, 0)
            ids.append(_enqueue(queue, config, index=index)[0])
        processed = run_worker(tmp_path / "q", poll=0.02, max_idle=0.2)
        assert processed == 2
        for task_id in ids:
            payload = json.loads(queue.result_path(task_id).read_text())
            assert payload["record"]["rounds"] > 0
            assert payload["attempt"] == 1
        assert not any(queue.leases.glob("*.json"))
        assert not any(queue.workers.glob("*.json"))  # deregistered

    def test_stop_file_halts_worker(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        (queue.root / "STOP").touch()
        _enqueue(queue, CONFIG)
        assert run_worker(tmp_path / "q", poll=0.02) == 0
        assert queue.task_path(queue.task_id(0, _digest(CONFIG))).exists()

    def test_failing_task_respects_retry_budget(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def always_fails(shape, seed, order="random", engine="sweep"):
            calls["n"] += 1
            raise RuntimeError("synthetic worker failure")

        monkeypatch.setitem(experiments.ALGORITHMS, "bad", always_fails)
        queue = FileTaskQueue(tmp_path / "q")
        config = RunConfig("bad", "hexagon", 2, 0)
        task_id, _ = _enqueue(queue, config, max_attempts=3)
        processed = run_worker(tmp_path / "q", poll=0.02, max_idle=0.2)
        assert processed == 3  # two retries + the terminal failure
        assert calls["n"] == 3
        payload = json.loads(queue.result_path(task_id).read_text())
        assert "synthetic worker failure" in payload["error"]
        assert payload["attempt"] == 3

    def test_long_task_does_not_count_as_idle_time(self, tmp_path,
                                                   monkeypatch):
        # Regression: the idle clock used to start at claim time, so a
        # task longer than --max-idle made the worker quit the moment the
        # queue went briefly empty.
        def slow(shape, seed, order="random", engine="sweep"):
            time.sleep(0.5)
            return {"rounds": 1, "succeeded": True}

        monkeypatch.setitem(experiments.ALGORITHMS, "slow", slow)
        queue = FileTaskQueue(tmp_path / "q")
        config = RunConfig("slow", "hexagon", 2, 0)
        _enqueue(queue, config, index=0)
        started = time.monotonic()
        processed = run_worker(tmp_path / "q", poll=0.02, max_idle=0.3)
        # max_idle (0.3s) < task time (0.5s): the worker must still hang
        # around for a full idle window *after* finishing the task.
        assert processed == 1
        assert time.monotonic() - started >= 0.8

    def test_worker_registration_is_visible(self, tmp_path):
        queue = FileTaskQueue(tmp_path / "q")
        queue.ensure_layout()
        thread = _start_worker(tmp_path / "q", worker_id="wreg",
                               max_idle=0.6)
        try:
            deadline = time.monotonic() + 5
            while not queue.live_workers() and time.monotonic() < deadline:
                time.sleep(0.02)
            assert queue.live_workers() == ["wreg"]
        finally:
            thread.join(timeout=10)
        assert queue.live_workers() == []


# ---------------------------------------------------------------------------
# The queue transport, end to end
# ---------------------------------------------------------------------------

class TestQueueTransport:
    def test_two_workers_match_jobs1_reference(self, tmp_path):
        reference = RunLedger(tmp_path / "reference.jsonl")
        expected = run_sweep(SPEC, jobs=1, ledger=reference)

        queue_dir = tmp_path / "q"
        workers = [_start_worker(queue_dir, worker_id=f"w{i}")
                   for i in range(2)]
        ledger = RunLedger(tmp_path / "queue.jsonl")
        transport = QueueTransport(queue_dir, poll=0.02, workers_expected=2,
                                   worker_timeout=30, timeout=120)
        result = run_sweep(SPEC, transport=transport, ledger=ledger)
        (queue_dir / "STOP").touch()
        for worker in workers:
            worker.join(timeout=30)

        assert result.counts()["executed"] == len(SPEC.expand())
        # Same digests, same record payloads, spec order preserved.
        assert ([e["digest"] for e in reference.entries()]
                == [e["digest"] for e in ledger.entries()])
        assert (records_to_dicts(reference.records())
                == records_to_dicts(ledger.records()))
        assert (records_to_dicts(expected.records)
                == records_to_dicts(result.records))

    def test_dead_worker_lease_is_reclaimed_mid_sweep(self, tmp_path):
        # Simulate a worker that claims a task and is then killed: the
        # lease never heartbeats, so reclamation must hand the task to the
        # surviving worker and the sweep must still finish with the same
        # ledger as a jobs=1 run.
        reference = RunLedger(tmp_path / "reference.jsonl")
        run_sweep(SPEC, jobs=1, ledger=reference)

        queue_dir = tmp_path / "q"
        queue = FileTaskQueue(queue_dir, lease_ttl=0.5)
        configs = SPEC.expand()
        victim = configs[0]
        _enqueue(queue, victim, index=0)
        claimed = queue.claim()
        assert claimed is not None  # the "dead worker" holds this lease
        stale = time.time() - 60
        os.utime(queue.lease_path(claimed[0]), (stale, stale))

        survivor = _start_worker(queue_dir, worker_id="survivor",
                                 lease_ttl=0.5)
        ledger = RunLedger(tmp_path / "queue.jsonl")
        transport = QueueTransport(queue_dir, lease_ttl=0.5, poll=0.02,
                                   timeout=120)
        result = run_sweep(SPEC, transport=transport, ledger=ledger)
        (queue_dir / "STOP").touch()
        survivor.join(timeout=30)

        assert not result.failures
        assert ([e["digest"] for e in reference.entries()]
                == [e["digest"] for e in ledger.entries()])
        assert (records_to_dicts(reference.records())
                == records_to_dicts(ledger.records()))
        # The reclaimed task really did consume an attempt.
        victim_result = json.loads(
            queue.result_path(queue.task_id(0, _digest(victim))).read_text())
        assert victim_result["attempt"] >= 1

    def test_queue_results_are_cached_and_resumable(self, tmp_path):
        queue_dir = tmp_path / "q"
        worker = _start_worker(queue_dir, worker_id="w0")
        transport = QueueTransport(queue_dir, poll=0.02, timeout=120)
        cache_dir = tmp_path / "cache"
        ledger_path = tmp_path / "ledger.jsonl"
        cold = run_sweep(SPEC, transport=transport, cache=cache_dir,
                         ledger=ledger_path)
        (queue_dir / "STOP").touch()
        worker.join(timeout=30)
        assert cold.counts()["executed"] == len(SPEC.expand())
        # Warm again through the cache (no workers needed at all) and
        # through the ledger (resume).
        warm = run_sweep(SPEC, transport=QueueTransport(queue_dir, timeout=5),
                         cache=cache_dir)
        assert warm.counts()["cached"] == len(SPEC.expand())
        resumed = run_sweep(SPEC,
                            transport=QueueTransport(queue_dir, timeout=5),
                            ledger=ledger_path, resume=True)
        assert resumed.counts()["resumed"] == len(SPEC.expand())

    def test_queue_retries_count_toward_the_resume_budget(self, tmp_path,
                                                          monkeypatch):
        # Worker-side retries and ledger-side resume retries must share
        # one budget: a config the workers already ran 3 times is given up
        # on the very next resume, not retried 3 more times per resume.
        calls = {"n": 0}

        def always_fails(shape, seed, order="random", engine="sweep"):
            calls["n"] += 1
            raise RuntimeError("deterministic queue failure")

        monkeypatch.setitem(experiments.ALGORITHMS, "bad", always_fails)
        spec = SweepSpec(algorithms=["bad"], families=["hexagon"], sizes=[2])
        queue_dir = tmp_path / "q"
        worker = _start_worker(queue_dir, worker_id="w0", max_idle=0.5)
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        transport = QueueTransport(queue_dir, poll=0.02, max_attempts=3,
                                   timeout=60)
        result = run_sweep(spec, transport=transport, ledger=ledger,
                           max_attempts=3)
        worker.join(timeout=30)
        assert calls["n"] == 3  # the worker consumed the whole budget
        assert result.counts()["failed"] == 1
        (digest, entry), = ledger.failures().items()
        assert entry["attempts"] == 3
        resumed = run_sweep(spec, transport=QueueTransport(queue_dir,
                                                           timeout=5),
                            ledger=ledger, resume=True, max_attempts=3)
        assert calls["n"] == 3  # gave up immediately, nothing re-ran
        assert resumed.counts()["gave-up"] == 1

    def test_workers_expected_fails_fast_without_workers(self, tmp_path):
        transport = QueueTransport(tmp_path / "q", workers_expected=1,
                                   worker_timeout=0.2, poll=0.02)
        with pytest.raises(RuntimeError, match="0 of 1 expected"):
            run_sweep(SPEC, transport=transport)

    def test_timeout_bounds_the_wait(self, tmp_path):
        transport = QueueTransport(tmp_path / "q", timeout=0.3, poll=0.02)
        with pytest.raises(TimeoutError, match="unfinished"):
            run_sweep(SPEC, transport=transport)


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------

class TestCli:
    def test_sweep_queue_requires_queue_dir(self, capsys):
        assert main(["sweep", "--transport", "queue"]) == 2
        assert "--queue-dir" in capsys.readouterr().err

    def test_queue_dir_requires_queue_transport(self, tmp_path, capsys):
        assert main(["sweep", "--queue-dir", str(tmp_path)]) == 2
        assert "--transport queue" in capsys.readouterr().err

    def test_worker_command_runs_and_exits(self, tmp_path, capsys):
        queue = FileTaskQueue(tmp_path / "q")
        _enqueue(queue, CONFIG)
        code = main(["worker", str(tmp_path / "q"),
                     "--poll", "0.02", "--max-idle", "0.2"])
        assert code == 0
        err = capsys.readouterr().err
        assert "exiting after 1 task(s)" in err
        task_id = queue.task_id(0, _digest(CONFIG))
        assert queue.result_path(task_id).exists()

    def test_cli_queue_sweep_end_to_end(self, tmp_path, capsys):
        queue_dir = tmp_path / "q"
        worker = _start_worker(queue_dir, worker_id="cli-w")
        summary_path = tmp_path / "summary.json"
        code = main(["sweep", "--algorithms", "dle", "--families", "hexagon",
                     "--sizes", "2", "--quiet",
                     "--transport", "queue", "--queue-dir", str(queue_dir),
                     "--workers-expected", "1", "--worker-timeout", "30",
                     "--queue-timeout", "120",
                     "--summary-json", str(summary_path)])
        (queue_dir / "STOP").touch()
        worker.join(timeout=30)
        assert code == 0
        counts = json.loads(summary_path.read_text())["counts"]
        assert counts["executed"] == 1 and counts["failed"] == 0