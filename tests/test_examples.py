"""The examples are part of the public contract: they must run cleanly."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # Small argument ladders keep the example runs fast under pytest.
    if script in ("table1_comparison.py", "scaling_study.py"):
        monkeypatch.setattr(sys, "argv", [script, "2", "3"])
    else:
        monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3


def test_quickstart_reports_leader(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Leader elected" in out
    assert "connected after reconnection: True" in out


def test_holes_example_shows_erosion_failure(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["holes_vs_erosion.py"])
    runpy.run_path(str(EXAMPLES_DIR / "holes_vs_erosion.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "stalled" in out or "failed" in out
    assert "Algorithm DLE" in out
