"""Tests for the leader-rooted spanning-tree application."""

import pytest

from repro.amoebot.algorithm import STATUS_KEY, STATUS_LEADER
from repro.amoebot.scheduler import Scheduler
from repro.amoebot.system import ParticleSystem
from repro.apps.spanning_tree import (
    SpanningTreeAlgorithm,
    SpanningTreeError,
    verify_spanning_tree,
)
from repro.core.full import elect_leader, elect_leader_known_boundary
from repro.grid.generators import (
    annulus,
    hexagon,
    hexagon_with_holes,
    line_shape,
    random_holey_blob,
)
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

SHAPES = {
    "hexagon3": hexagon(3),
    "line8": line_shape(8),
    "annulus": annulus(5, 2),
    "holey_hexagon": hexagon_with_holes(7),
    "holey_blob": random_holey_blob(90, seed=4),
    "single": Shape([(0, 0)]),
}


def elect_and_build_tree(shape, seed=0, order="random"):
    system = ParticleSystem.from_shape(shape, orientation_seed=seed)
    elect_leader_known_boundary(system, reconnect=True, seed=seed)
    algorithm = SpanningTreeAlgorithm()
    result = Scheduler(order=order, seed=seed).run(algorithm, system)
    return system, result


class TestConstruction:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    def test_builds_valid_tree_after_election(self, name):
        system, result = elect_and_build_tree(SHAPES[name], seed=1)
        assert result.terminated
        parents = verify_spanning_tree(system)
        assert len(parents) == len(system)

    @pytest.mark.parametrize("order", ["round_robin", "random", "reversed"])
    def test_valid_under_different_schedulers(self, order):
        system, result = elect_and_build_tree(SHAPES["annulus"], seed=2,
                                              order=order)
        assert result.terminated
        verify_spanning_tree(system)

    def test_tree_rounds_linear_in_final_diameter(self):
        shape = SHAPES["hexagon3"]
        system, result = elect_and_build_tree(shape, seed=0)
        final_metrics = compute_metrics(system.shape())
        assert result.rounds <= final_metrics.diameter + 2

    def test_leader_has_no_parent_everyone_else_does(self):
        system, _ = elect_and_build_tree(SHAPES["holey_hexagon"], seed=3)
        parents = verify_spanning_tree(system)
        roots = [pid for pid, parent in parents.items() if parent is None]
        assert len(roots) == 1
        leader = [p for p in system.particles()
                  if p.get(STATUS_KEY) == STATUS_LEADER][0]
        assert roots[0] == leader.particle_id

    def test_parent_of_accessor(self):
        system, _ = elect_and_build_tree(SHAPES["line8"], seed=1)
        for particle in system.particles():
            parent = SpanningTreeAlgorithm.parent_of(particle, system)
            if particle.get(STATUS_KEY) == STATUS_LEADER:
                assert parent is None
            else:
                assert parent is not None
                assert parent.get("tree_joined")

    def test_full_pipeline_composition(self):
        # The composition the paper motivates: OBD -> DLE -> Collect -> tree.
        shape = SHAPES["holey_blob"]
        system = ParticleSystem.from_shape(shape, orientation_seed=5)
        elect_leader(system, reconnect=True, seed=5)
        result = Scheduler(order="random", seed=5).run(
            SpanningTreeAlgorithm(), system)
        assert result.terminated
        verify_spanning_tree(system)


class TestValidation:
    def test_requires_connected_system(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (5, 5)]))
        system.particles()[0][STATUS_KEY] = STATUS_LEADER
        with pytest.raises(ValueError):
            SpanningTreeAlgorithm().setup(system)

    def test_requires_exactly_one_leader(self):
        system = ParticleSystem.from_shape(hexagon(1))
        with pytest.raises(ValueError):
            SpanningTreeAlgorithm().setup(system)

    def test_verify_detects_missing_membership(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0)]))
        system.particles()[0][STATUS_KEY] = STATUS_LEADER
        # Tree never built: verification must complain.
        with pytest.raises(SpanningTreeError):
            verify_spanning_tree(system)
