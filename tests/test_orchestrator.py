"""Tests for the ``repro.orchestrator`` sweep subsystem."""

import json
import os
import subprocess
import sys

import pytest

from repro.analysis import experiments
from repro.io import records_to_dicts
from repro.orchestrator import (
    ResultCache,
    RunConfig,
    RunLedger,
    SweepSpec,
    config_digest,
    execute_config,
    resolve_transport,
    run_sweep,
    scaling_spec,
    table1_spec,
)

CONFIG = RunConfig(algorithm="dle", family="hexagon", size=2, seed=0)


def _subprocess_env():
    """Environment for helper subprocesses: make ``repro`` importable."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


# ---------------------------------------------------------------------------
# Spec expansion
# ---------------------------------------------------------------------------

class TestSweepSpec:
    def test_expand_size_and_order(self):
        spec = SweepSpec(algorithms=["dle", "erosion"], families=["hexagon"],
                         sizes=[2, 3], seeds=[0, 1])
        configs = spec.expand()
        assert len(configs) == len(spec) == 8
        # Canonical nesting: family -> size -> seed -> algorithm.
        assert configs[0] == RunConfig("dle", "hexagon", 2, 0)
        assert configs[1] == RunConfig("erosion", "hexagon", 2, 0)
        assert configs[2] == RunConfig("dle", "hexagon", 2, 1)
        assert configs[-1] == RunConfig("erosion", "hexagon", 3, 1)

    def test_configs_are_hashable_and_round_trip(self):
        assert len({CONFIG, RunConfig("dle", "hexagon", 2, 0)}) == 1
        assert RunConfig.from_dict(CONFIG.to_dict()) == CONFIG

    @pytest.mark.parametrize("kwargs", [
        {"algorithms": ["frobnicate"]},
        {"families": ["klein-bottle"]},
        {"scheduler": "psychic"},
        {"engine": "warp"},
    ])
    def test_expand_validates(self, kwargs):
        base = {"algorithms": ["dle"], "families": ["hexagon"], "sizes": [2]}
        base.update(kwargs)
        with pytest.raises(ValueError):
            SweepSpec(**base).expand()

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(algorithms=[], families=["hexagon"], sizes=[2])

    def test_spec_round_trip(self):
        spec = table1_spec(sizes=[2, 3])
        assert SweepSpec.from_dict(spec.to_dict()).expand() == spec.expand()

    def test_scaling_spec_matches_serial_ladder(self):
        spec = scaling_spec("dle", "hexagon", [2, 3], seed=7)
        assert [c.size for c in spec.expand()] == [2, 3]
        assert all(c.seed == 7 for c in spec.expand())

    def test_engine_is_part_of_the_config(self):
        spec = SweepSpec(algorithms=["dle"], families=["hexagon"], sizes=[2],
                         engine="event")
        configs = spec.expand()
        assert all(c.engine == "event" for c in configs)
        assert SweepSpec.from_dict(spec.to_dict()).engine == "event"
        # Old serialised configs (pre-engine) default to the sweep engine.
        legacy = {"algorithm": "dle", "family": "hexagon", "size": 2,
                  "seed": 0}
        assert RunConfig.from_dict(legacy).engine == "sweep"
        assert "engine=event" in configs[0].describe()


# ---------------------------------------------------------------------------
# Content-addressed cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_digest_stable_and_sensitive(self):
        digest = config_digest(CONFIG, "v1")
        assert digest == config_digest(RunConfig("dle", "hexagon", 2, 0), "v1")
        mutations = [
            RunConfig("erosion", "hexagon", 2, 0),
            RunConfig("dle", "holey", 2, 0),
            RunConfig("dle", "hexagon", 3, 0),
            RunConfig("dle", "hexagon", 2, 1),
            RunConfig("dle", "hexagon", 2, 0, scheduler="reversed"),
            RunConfig("dle", "hexagon", 2, 0, engine="event"),
        ]
        assert len({config_digest(m, "v1") for m in mutations} | {digest}) == 7
        assert config_digest(CONFIG, "v2") != digest

    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get(CONFIG) is None
        record = execute_config(CONFIG)
        cache.put(CONFIG, record)
        assert CONFIG in cache
        reloaded = cache.get(CONFIG)
        assert records_to_dicts([reloaded]) == records_to_dicts([record])
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_mutated_config_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(CONFIG, execute_config(CONFIG))
        assert RunConfig("dle", "hexagon", 2, 1) not in cache
        assert cache.get(RunConfig("dle", "hexagon", 2, 1)) is None

    def test_code_version_invalidates(self, tmp_path):
        old = ResultCache(tmp_path / "cache", code_version="v1")
        old.put(CONFIG, execute_config(CONFIG))
        assert CONFIG not in ResultCache(tmp_path / "cache", code_version="v2")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(CONFIG, execute_config(CONFIG))
        cache.path_for(CONFIG).write_text("{not json")
        assert cache.get(CONFIG) is None

    def test_writer_replace_never_exposes_partial_entry(self, tmp_path):
        # The temp-file + os.replace write racing a reader: while another
        # process overwrites the entry in a tight loop, every successful
        # read must be the complete, correct record — never a torn file.
        cache = ResultCache(tmp_path / "cache", code_version="race")
        record = execute_config(CONFIG)
        expected = records_to_dicts([record])
        cache.put(CONFIG, record)
        script = (
            "import sys\n"
            "from repro.orchestrator import ResultCache, RunConfig,"
            " execute_config\n"
            "config = RunConfig('dle', 'hexagon', 2, 0)\n"
            "cache = ResultCache(sys.argv[1], code_version='race')\n"
            "record = execute_config(config)\n"
            "for _ in range(200):\n"
            "    cache.put(config, record)\n"
        )
        writer = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path / "cache")],
            env=_subprocess_env())
        try:
            reads = 0
            while writer.poll() is None:
                got = cache.get(CONFIG)
                assert got is not None, "reader saw a missing/partial entry"
                assert records_to_dicts([got]) == expected
                reads += 1
            assert writer.wait(timeout=120) == 0
            assert reads > 0
        finally:
            if writer.poll() is None:
                writer.kill()
        # Leftover hidden temp files (from a crashed writer) are not
        # counted as entries.
        (tmp_path / "cache" / cache.digest(CONFIG)[:2] / ".leftover.tmp"
         ).write_text("junk")
        assert len(cache) == 1


# ---------------------------------------------------------------------------
# Run ledger
# ---------------------------------------------------------------------------

class TestRunLedger:
    def test_jsonl_record_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        record = execute_config(CONFIG)
        ledger.append("d1", CONFIG, "done",
                      record_dict=records_to_dicts([record])[0], elapsed=0.5)
        ledger.append("d2", CONFIG, "failed", error="boom")
        assert ledger.completed_digests() == {"d1"}
        assert records_to_dicts(ledger.records()) == records_to_dicts([record])
        assert len(ledger) == 2

    def test_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        ledger.append("d1", CONFIG, "done",
                      record_dict=records_to_dicts([execute_config(CONFIG)])[0])
        with path.open("a") as handle:
            handle.write('{"kind": "sweep-run", "digest": "d2", "stat')
        assert ledger.completed_digests() == {"d1"}

    def test_rejects_unknown_status(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger(tmp_path / "l.jsonl").append("d", CONFIG, "maybe")

    def test_records_deduplicated_by_digest(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        record_dict = records_to_dicts([execute_config(CONFIG)])[0]
        # A config completed in one sweep and cache-served in a later one
        # appears twice in the ledger but is one measurement.
        ledger.append("d1", CONFIG, "done", record_dict=record_dict)
        ledger.append("d1", CONFIG, "done", record_dict=record_dict)
        assert len(ledger) == 2
        assert len(ledger.records()) == 1

    def test_digestless_entries_are_not_collapsed(self, tmp_path):
        # Regression: entries with a missing (or empty) digest used to all
        # share the "" dedup key, so every digestless measurement after the
        # first was silently dropped.
        path = tmp_path / "ledger.jsonl"
        ledger = RunLedger(path)
        record_dict = records_to_dicts([execute_config(CONFIG)])[0]
        ledger.append("d1", CONFIG, "done", record_dict=record_dict)
        with path.open("a") as handle:
            for _ in range(2):  # externally-written lines without a digest
                entry = {"kind": "sweep-run", "status": "done",
                         "record": record_dict}
                handle.write(json.dumps(entry) + "\n")
        assert len(ledger) == 3
        assert len(ledger.records()) == 3

    def test_concurrent_appenders_tear_no_lines(self, tmp_path):
        # Two processes hammering append() on the same file: every line
        # must stay parseable and none may be lost (single O_APPEND write
        # per entry, plus an advisory lock).
        path = tmp_path / "ledger.jsonl"
        per_writer, writers = 150, 2
        script = (
            "import sys\n"
            "from repro.orchestrator import RunConfig, RunLedger\n"
            "config = RunConfig('dle', 'hexagon', 2, 0)\n"
            "ledger = RunLedger(sys.argv[1])\n"
            "for i in range(int(sys.argv[3])):\n"
            "    ledger.append(f'{sys.argv[2]}-{i}', config, 'done',\n"
            "                  record_dict={'writer': sys.argv[2], 'i': i})\n"
        )
        procs = [subprocess.Popen(
            [sys.executable, "-c", script, str(path), f"w{n}",
             str(per_writer)], env=_subprocess_env()) for n in range(writers)]
        for proc in procs:
            assert proc.wait(timeout=120) == 0
        raw_lines = [line for line in path.read_text().splitlines() if line]
        assert len(raw_lines) == per_writer * writers
        parsed = [json.loads(line) for line in raw_lines]  # raises if torn
        assert len({entry["digest"] for entry in parsed}) == len(parsed)

    def test_failures_report_attempt_counts(self, tmp_path):
        ledger = RunLedger(tmp_path / "ledger.jsonl")
        ledger.append("d1", CONFIG, "failed", error="boom", attempts=1)
        ledger.append("d1", CONFIG, "failed", error="boom again", attempts=2)
        failures = ledger.failures()
        assert failures["d1"]["attempts"] == 2
        assert failures["d1"]["error"] == "boom again"
        # Ledgers written before attempts were recorded fall back to
        # counting failed lines.
        legacy = RunLedger(tmp_path / "legacy.jsonl")
        legacy.append("d2", CONFIG, "failed", error="old")
        legacy.append("d2", CONFIG, "failed", error="old")
        assert legacy.failures()["d2"]["attempts"] == 2


# ---------------------------------------------------------------------------
# The sweep engine
# ---------------------------------------------------------------------------

def _counting_driver(counter):
    def driver(shape, seed, order="random", engine="sweep"):
        counter["runs"] += 1
        return {"rounds": 1, "succeeded": True}
    return driver


@pytest.fixture
def counted_algorithm(monkeypatch):
    """A fake registered algorithm that counts its executions."""
    counter = {"runs": 0}
    monkeypatch.setitem(experiments.ALGORITHMS, "counted",
                        _counting_driver(counter))
    return counter


SPEC = SweepSpec(algorithms=["counted"], families=["hexagon"],
                 sizes=[2], seeds=[0, 1, 2, 3])


class TestRunSweep:
    def test_serial_matches_direct_execution(self):
        spec = SweepSpec(algorithms=["dle", "erosion"], families=["hexagon"],
                         sizes=[2], seeds=[0, 1])
        swept = run_sweep(spec, jobs=1).records
        direct = [execute_config(c) for c in spec.expand()]
        assert records_to_dicts(swept) == records_to_dicts(direct)

    def test_parallel_matches_serial(self):
        spec = SweepSpec(algorithms=["dle", "erosion"], families=["hexagon"],
                         sizes=[2, 3], seeds=[0])
        serial = run_sweep(spec, jobs=1).records
        parallel = run_sweep(spec, jobs=4).records
        assert records_to_dicts(parallel) == records_to_dicts(serial)

    def test_warm_cache_executes_nothing(self, tmp_path, counted_algorithm):
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(SPEC, jobs=1, cache=cache)
        assert counted_algorithm["runs"] == 4
        assert cold.counts()["executed"] == 4
        warm = run_sweep(SPEC, jobs=1, cache=cache)
        assert counted_algorithm["runs"] == 4  # nothing re-ran
        assert warm.counts()["cached"] == 4
        assert records_to_dicts(warm.records) == records_to_dicts(cold.records)

    def test_resume_skips_completed_configs(self, tmp_path, counted_algorithm):
        ledger_path = tmp_path / "ledger.jsonl"
        run_sweep(SPEC, jobs=1, ledger=str(ledger_path))
        assert counted_algorithm["runs"] == 4

        # Simulate an interrupt: keep only the first two completed lines.
        lines = ledger_path.read_text().splitlines()[:2]
        ledger_path.write_text("\n".join(lines) + "\n")

        resumed = run_sweep(SPEC, jobs=1, ledger=str(ledger_path), resume=True)
        assert counted_algorithm["runs"] == 6  # only the 2 missing ran
        counts = resumed.counts()
        assert counts["resumed"] == 2 and counts["executed"] == 2
        assert len(resumed.records) == 4
        # The ledger is now complete: a further resume executes nothing.
        again = run_sweep(SPEC, jobs=1, ledger=str(ledger_path), resume=True)
        assert counted_algorithm["runs"] == 6
        assert again.counts()["resumed"] == 4

    def test_resume_requires_ledger(self):
        with pytest.raises(ValueError):
            run_sweep(SPEC, resume=True)

    def test_accepts_pathlib_cache_and_ledger(self, tmp_path,
                                              counted_algorithm):
        result = run_sweep(SPEC, jobs=1, cache=tmp_path / "cache",
                           ledger=tmp_path / "ledger.jsonl")
        assert result.counts()["executed"] == 4
        assert (tmp_path / "ledger.jsonl").is_file()
        assert run_sweep(SPEC, jobs=1,
                         cache=tmp_path / "cache").counts()["cached"] == 4

    def test_failures_are_captured_not_fatal(self, tmp_path, monkeypatch):
        def flaky(shape, seed, order="random", engine="sweep"):
            if seed == 1:
                raise RuntimeError("synthetic failure")
            return {"rounds": 1, "succeeded": True}

        monkeypatch.setitem(experiments.ALGORITHMS, "flaky", flaky)
        spec = SweepSpec(algorithms=["flaky"], families=["hexagon"],
                         sizes=[2], seeds=[0, 1, 2])
        ledger_path = tmp_path / "ledger.jsonl"
        result = run_sweep(spec, jobs=1, ledger=str(ledger_path))
        assert result.counts()["failed"] == 1
        assert len(result.records) == 2
        assert "synthetic failure" in result.failures[0].error
        with pytest.raises(RuntimeError):
            result.raise_failures()
        # Failed runs are not marked done, so a resume retries them.
        ledger = RunLedger(ledger_path)
        assert len(ledger.completed_digests()) == 2

    def test_failures_never_cached(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def always_fails(shape, seed, order="random", engine="sweep"):
            calls["n"] += 1
            raise RuntimeError("nope")

        monkeypatch.setitem(experiments.ALGORITHMS, "bad", always_fails)
        spec = SweepSpec(algorithms=["bad"], families=["hexagon"], sizes=[2])
        cache = ResultCache(tmp_path / "cache")
        run_sweep(spec, jobs=1, cache=cache)
        run_sweep(spec, jobs=1, cache=cache)
        assert calls["n"] == 2  # second sweep re-ran the failure
        assert len(cache) == 0

    def test_resume_gives_up_after_max_attempts(self, tmp_path, monkeypatch):
        calls = {"n": 0}

        def always_fails(shape, seed, order="random", engine="sweep"):
            calls["n"] += 1
            raise RuntimeError("deterministic failure")

        monkeypatch.setitem(experiments.ALGORITHMS, "bad", always_fails)
        spec = SweepSpec(algorithms=["bad"], families=["hexagon"], sizes=[2])
        ledger_path = tmp_path / "ledger.jsonl"

        run_sweep(spec, jobs=1, ledger=str(ledger_path))
        for expected_attempts in (2, 3):
            result = run_sweep(spec, jobs=1, ledger=str(ledger_path),
                               resume=True, max_attempts=3)
            assert calls["n"] == expected_attempts
            assert result.counts()["gave-up"] == 0
        ledger = RunLedger(ledger_path)
        assert ledger.failures()[next(iter(ledger.failures()))]["attempts"] == 3

        # Attempt budget spent: the next resume refuses to re-run.
        size_before = len(ledger)
        result = run_sweep(spec, jobs=1, ledger=str(ledger_path),
                           resume=True, max_attempts=3)
        assert calls["n"] == 3  # nothing re-ran
        counts = result.counts()
        assert counts["gave-up"] == 1 and counts["failed"] == 1
        assert result.failures[0].gave_up
        assert "gave up after 3 failed attempts" in result.failures[0].error
        assert "deterministic failure" in result.failures[0].error
        # Giving up does not append (the attempt count only grows on runs).
        assert len(ledger) == size_before

        # The give-up is surfaced in the sweep report.
        from repro.orchestrator import format_sweep_summary
        assert "1 gave up" in format_sweep_summary(result)

        # max_attempts=None keeps the historical retry-forever behaviour.
        result = run_sweep(spec, jobs=1, ledger=str(ledger_path),
                           resume=True, max_attempts=None)
        assert calls["n"] == 4

    def test_ledger_is_written_in_spec_order_for_any_transport(self, tmp_path):
        from repro.orchestrator import default_code_version

        spec = SweepSpec(algorithms=["dle", "erosion"], families=["hexagon"],
                         sizes=[2, 3], seeds=[0])
        expected = [config_digest(c, default_code_version())
                    for c in spec.expand()]
        for name, jobs in (("serial", 1), ("parallel", 4)):
            ledger = RunLedger(tmp_path / f"{name}.jsonl")
            run_sweep(spec, jobs=jobs, ledger=ledger)
            assert [e["digest"] for e in ledger.entries()] == expected

    def test_explicit_transport_names(self, tmp_path):
        spec = SweepSpec(algorithms=["dle"], families=["hexagon"], sizes=[2],
                         seeds=[0, 1])
        inline = run_sweep(spec, transport="inline").records
        process = run_sweep(spec, transport="process", jobs=2).records
        assert records_to_dicts(inline) == records_to_dicts(process)
        with pytest.raises(ValueError, match="queue directory"):
            run_sweep(spec, transport="queue")
        with pytest.raises(ValueError, match="coordinator address"):
            run_sweep(spec, transport="tcp")
        with pytest.raises(ValueError, match="unknown transport"):
            run_sweep(spec, transport="carrier-pigeon")

    def test_transport_registry_is_the_single_source_of_truth(self):
        from repro.orchestrator import TRANSPORT_HELP, TRANSPORTS
        from repro.cli import build_parser

        assert list(TRANSPORTS) == ["inline", "process", "queue", "tcp"]
        assert set(TRANSPORT_HELP) == set(TRANSPORTS)
        # The CLI's --transport choices are derived from the registry, not
        # from a duplicated literal list.
        parser = build_parser()
        sweep = next(a for a in parser._subparsers._group_actions[0]
                     .choices["sweep"]._actions
                     if "--transport" in getattr(a, "option_strings", ()))
        assert sweep.choices == list(TRANSPORTS)

    def test_unknown_transport_raises_before_any_backend_is_built(self,
                                                                  monkeypatch):
        # A typo plus backend options must fail on the name alone — no
        # pool is spawned, no socket opened, no directory created.
        from repro.orchestrator import transport as transport_module

        def exploding_factory(**_kwargs):
            raise AssertionError("a backend was constructed")

        for name in transport_module.TRANSPORTS:
            monkeypatch.setitem(transport_module.TRANSPORTS, name,
                                exploding_factory)
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("quue", queue_dir="/tmp/somewhere")
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("tpc", coordinator="localhost:1")

    def test_non_string_transport_objects_pass_through(self):
        class FakeTransport:
            def run(self, items):
                return iter(())

        fake = FakeTransport()
        assert resolve_transport(fake) is fake
        with pytest.raises(TypeError, match="not a transport"):
            resolve_transport(object())

    def test_progress_callback_streams_every_config(self):
        seen = []
        run_sweep(SweepSpec(algorithms=["dle"], families=["hexagon"],
                            sizes=[2], seeds=[0, 1]),
                  progress=lambda done, total, result:
                      seen.append((done, total, result.ok)))
        assert seen == [(1, 2, True), (2, 2, True)]

    def test_scheduler_order_changes_the_run(self):
        base = RunConfig("dle", "hexagon", 3, 0)
        reversed_ = RunConfig("dle", "hexagon", 3, 0, scheduler="reversed")
        a = execute_config(base)
        b = execute_config(reversed_)
        assert a.succeeded and b.succeeded
        # Same experiment, different adversary: the records must not be
        # conflated by the cache.
        assert (config_digest(base, "v") != config_digest(reversed_, "v"))


# ---------------------------------------------------------------------------
# Thin front-ends stay equivalent to the historical serial loops
# ---------------------------------------------------------------------------

class TestFrontEnds:
    def test_run_scaling_experiment_unchanged_shape(self):
        records = experiments.run_scaling_experiment("dle", "hexagon", [2, 3])
        assert [r.size for r in records] == [2, 3]
        assert all(r.algorithm == "dle" and r.family == "hexagon"
                   for r in records)

    def test_run_table1_experiment_layout(self):
        records = experiments.run_table1_experiment(
            sizes=[2], families=["hexagon"])
        assert len(records) == len(experiments.TABLE1_ALGORITHMS)
        assert [r.algorithm for r in records] == list(
            experiments.TABLE1_ALGORITHMS)

    def test_front_end_raises_on_failure(self, monkeypatch):
        def always_fails(shape, seed, order="random", engine="sweep"):
            raise RuntimeError("driver exploded")

        monkeypatch.setitem(experiments.ALGORITHMS, "dle", always_fails)
        with pytest.raises(RuntimeError, match="driver exploded"):
            experiments.run_scaling_experiment("dle", "hexagon", [2])

    def test_front_end_preserves_exception_type(self, monkeypatch):
        def raises_value_error(shape, seed, order="random", engine="sweep"):
            raise ValueError("bad input")

        monkeypatch.setitem(experiments.ALGORITHMS, "dle", raises_value_error)
        # jobs=1 runs in-process, so the original exception object survives,
        # matching the historical serial-loop behaviour.
        with pytest.raises(ValueError, match="bad input"):
            experiments.run_scaling_experiment("dle", "hexagon", [2])
