"""Property-based tests (hypothesis) for the core invariants.

Random connected shapes are drawn through the seeded Eden-growth generator
(:func:`repro.grid.generators.random_blob`) so every drawn example is a valid
permitted initial configuration of the amoebot model; hypothesis then
explores sizes and seeds.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.amoebot.scheduler import Scheduler
from repro.amoebot.system import ParticleSystem
from repro.baselines.erosion import run_erosion_election
from repro.core.collect import CollectSimulator
from repro.core.dle import DLEAlgorithm, verify_unique_leader
from repro.core.obd import BoundaryCompetition, OuterBoundaryDetection
from repro.grid.coords import disk, grid_distance, ring
from repro.grid.generators import random_blob, random_holey_blob
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

# Property tests run whole algorithm executions; keep the example counts
# modest so the suite stays fast while still exploring many configurations.
FAST = settings(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])
SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

points_strategy = st.tuples(st.integers(-30, 30), st.integers(-30, 30))

blob_strategy = st.builds(
    random_blob,
    n=st.integers(min_value=1, max_value=70),
    seed=st.integers(min_value=0, max_value=10_000),
)

holey_blob_strategy = st.builds(
    random_holey_blob,
    n=st.integers(min_value=20, max_value=80),
    hole_fraction=st.sampled_from([0.1, 0.2, 0.3]),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestGridProperties:
    @FAST
    @given(a=points_strategy, b=points_strategy, c=points_strategy)
    def test_grid_distance_is_a_metric(self, a, b, c):
        assert grid_distance(a, b) >= 0
        assert (grid_distance(a, b) == 0) == (a == b)
        assert grid_distance(a, b) == grid_distance(b, a)
        assert grid_distance(a, c) <= grid_distance(a, b) + grid_distance(b, c)

    @FAST
    @given(center=points_strategy, radius=st.integers(0, 12))
    def test_ring_and_disk_sizes(self, center, radius):
        ring_points = ring(center, radius)
        disk_points = disk(center, radius)
        expected_ring = 1 if radius == 0 else 6 * radius
        assert len(ring_points) == expected_ring
        assert len(disk_points) == 1 + 3 * radius * (radius + 1)
        assert set(ring_points) <= set(disk_points)

    @FAST
    @given(shape=blob_strategy)
    def test_boundary_counts_in_range(self, shape):
        for point in shape.boundary_points:
            for boundary in shape.local_boundaries(point):
                count = len(boundary) - 2
                if len(shape) >= 2:
                    assert -1 <= count <= 3
                else:
                    assert count == 4


class TestShapeProperties:
    @FAST
    @given(shape=blob_strategy)
    def test_observation4_on_random_shapes(self, shape):
        if len(shape) < 2:
            return
        for vring in shape.virtual_rings():
            assert vring.total_count == (6 if vring.is_outer else -6)

    @FAST
    @given(shape=blob_strategy)
    def test_proposition7_on_random_shapes(self, shape):
        if len(shape) < 2 or not shape.is_simply_connected():
            return
        assert shape.sce_points()

    @FAST
    @given(shape=holey_blob_strategy)
    def test_metric_ordering(self, shape):
        metrics = compute_metrics(shape)
        assert metrics.grid_diam <= metrics.area_diameter <= metrics.diameter
        assert metrics.n <= metrics.n_area

    @FAST
    @given(shape=blob_strategy)
    def test_erosion_to_a_point_preserves_simple_connectivity(self, shape):
        # Observation 5 applied iteratively (the basis of all erosion-style
        # election algorithms).
        if not shape.is_simply_connected():
            return
        current = shape
        for _ in range(min(len(shape) - 1, 30)):
            sce = current.sce_points()
            assert sce
            current = current.without(sce[0])
            assert current.is_simply_connected()


class TestAlgorithmProperties:
    @SLOW
    @given(shape=blob_strategy, seed=st.integers(0, 1000))
    def test_dle_always_elects_unique_leader(self, shape, seed):
        system = ParticleSystem.from_shape(shape, orientation_seed=seed)
        algorithm = DLEAlgorithm()
        result = Scheduler(order="random", seed=seed).run(algorithm, system)
        assert result.terminated
        verify_unique_leader(system)
        metrics = compute_metrics(shape)
        assert result.rounds <= 10 * metrics.area_diameter + 6

    @SLOW
    @given(shape=holey_blob_strategy, seed=st.integers(0, 1000))
    def test_dle_handles_holes_and_collect_reconnects(self, shape, seed):
        system = ParticleSystem.from_shape(shape, orientation_seed=seed)
        algorithm = DLEAlgorithm()
        result = Scheduler(order="random", seed=seed).run(algorithm, system)
        assert result.terminated
        leader = verify_unique_leader(system)
        collect = CollectSimulator(system, leader).run()
        assert collect.connected
        assert system.is_connected()
        assert len(system) == len(shape)

    @SLOW
    @given(shape=blob_strategy, seed=st.integers(0, 1000))
    def test_erosion_succeeds_exactly_on_hole_free_shapes(self, shape, seed):
        system = ParticleSystem.from_shape(shape, orientation_seed=seed)
        outcome = run_erosion_election(system, seed=seed)
        if shape.is_simply_connected():
            assert outcome.succeeded
        # (On shapes with holes the erosion baseline may stall; that case is
        # covered deterministically in test_baselines.py.)

    @SLOW
    @given(shape=holey_blob_strategy)
    def test_obd_matches_geometric_outer_boundary(self, shape):
        system = ParticleSystem.from_shape(shape, orientation_seed=0)
        result = OuterBoundaryDetection(system).run()
        assert result.outer_boundary_points == set(shape.outer_boundary)

    @FAST
    @given(shape=blob_strategy)
    def test_boundary_competition_preserves_total(self, shape):
        if len(shape) < 2:
            return
        ring_obj = shape.outer_ring()
        counts = [v.count for v in ring_obj.vnodes]
        result = BoundaryCompetition(counts).run()
        assert result.total_count == 6
        assert sum(s.size for s in result.final_segments) == len(counts)
        assert result.num_final_segments in (1, 2, 3, 6)
