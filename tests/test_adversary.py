"""Tests for the adversarial scheduler order policies.

The paper's correctness results hold for *every* fair strong scheduler, so
Algorithm DLE and the erosion baseline must elect a unique leader under each
adversary, and DLE must stay within its Theorem 18 round bound.
"""

import random

import pytest

from repro.amoebot.adversary import (
    ADVERSARY_FACTORIES,
    alternating_order,
    inside_out_order,
    outside_in_order,
    sticky_factory,
    sticky_order,
)
from repro.amoebot.scheduler import Scheduler, make_scheduler
from repro.amoebot.system import ParticleSystem
from repro.baselines.erosion import run_erosion_election
from repro.core.dle import DLEAlgorithm, verify_unique_leader
from repro.grid.generators import annulus, hexagon, hexagon_with_holes
from repro.grid.metrics import compute_metrics


class TestPoliciesArePermutations:
    @pytest.mark.parametrize("name", sorted(ADVERSARY_FACTORIES))
    def test_returns_permutation(self, name):
        system = ParticleSystem.from_shape(hexagon(2))
        policy = ADVERSARY_FACTORIES[name](system)
        ids = system.particle_ids()
        for round_index in range(3):
            order = policy(round_index, list(ids), random.Random(0))
            assert sorted(order) == sorted(ids)

    def test_outside_in_puts_central_particles_first(self):
        system = ParticleSystem.from_shape(hexagon(3))
        policy = outside_in_order(system)
        order = policy(0, system.particle_ids(), random.Random(0))
        center_particle = system.particle_at((0, 0))
        assert order[0] == center_particle.particle_id

    def test_inside_out_is_reverse_of_outside_in_extremes(self):
        system = ParticleSystem.from_shape(hexagon(3))
        inward = outside_in_order(system)(0, system.particle_ids(), random.Random(0))
        outward = inside_out_order(system)(0, system.particle_ids(), random.Random(0))
        assert inward[0] != outward[0]

    def test_sticky_keeps_victim_last(self):
        system = ParticleSystem.from_shape(hexagon(2))
        policy = sticky_order(victim_index=0)
        ids = system.particle_ids()
        for round_index in range(3):
            order = policy(round_index, list(ids), random.Random(0))
            assert order[-1] == ids[0]

    def test_alternating_flips_each_round(self):
        policy = alternating_order()
        ids = [1, 2, 3]
        assert policy(0, ids, random.Random(0)) == [1, 2, 3]
        assert policy(1, ids, random.Random(0)) == [3, 2, 1]

    def test_sticky_victim_selectable_by_index(self):
        system = ParticleSystem.from_shape(hexagon(2))
        ids = system.particle_ids()
        policy = sticky_factory(system, victim_index=3)
        for round_index in range(3):
            order = policy(round_index, list(ids), random.Random(0))
            assert order[-1] == ids[3]

    def test_sticky_victim_seedable_and_held_for_the_run(self):
        system = ParticleSystem.from_shape(hexagon(2))
        ids = system.particle_ids()
        first = sticky_factory(system, seed=11)
        second = sticky_factory(system, seed=11)
        victim = first(0, list(ids), random.Random(0))[-1]
        assert second(0, list(ids), random.Random(99))[-1] == victim
        # the drawn victim is held across rounds, not redrawn
        assert first(5, list(ids), random.Random(123))[-1] == victim

    def test_sticky_table_default_is_not_hardwired_to_index_zero(self):
        # regression: the factory table used to pin ids[0] for every system
        system = ParticleSystem.from_shape(hexagon(3))
        ids = system.particle_ids()
        victim = ADVERSARY_FACTORIES["sticky"](system)(
            0, list(ids), random.Random(0))[-1]
        other = sticky_factory(system, seed=len(system))(
            0, list(ids), random.Random(0))[-1]
        assert victim == other  # population-seeded, reproducible

    @pytest.mark.parametrize("name", sorted(ADVERSARY_FACTORIES))
    def test_factories_deterministic_under_fixed_rng(self, name):
        runs = []
        for _ in range(2):
            system = ParticleSystem.from_shape(hexagon(2))
            policy = ADVERSARY_FACTORIES[name](system)
            ids = system.particle_ids()
            rng = random.Random(7)
            runs.append([policy(r, list(ids), rng) for r in range(4)])
        assert runs[0] == runs[1]


class TestAlgorithmsUnderAdversaries:
    SHAPES = {
        "hexagon": hexagon(3),
        "annulus": annulus(5, 2),
        "holey": hexagon_with_holes(7),
    }

    @pytest.mark.parametrize("adversary", sorted(ADVERSARY_FACTORIES))
    @pytest.mark.parametrize("shape_name", sorted(SHAPES))
    def test_dle_correct_under_every_adversary(self, adversary, shape_name):
        shape = self.SHAPES[shape_name]
        metrics = compute_metrics(shape)
        system = ParticleSystem.from_shape(shape, orientation_seed=1)
        policy = ADVERSARY_FACTORIES[adversary](system)
        algorithm = DLEAlgorithm()
        result = Scheduler(order=policy, seed=1).run(algorithm, system)
        assert result.terminated
        verify_unique_leader(system)
        assert result.rounds <= 10 * metrics.area_diameter + 6

    @pytest.mark.parametrize("adversary", sorted(ADVERSARY_FACTORIES))
    def test_erosion_correct_under_every_adversary_on_hexagon(self, adversary):
        system = ParticleSystem.from_shape(hexagon(3), orientation_seed=2)
        policy = ADVERSARY_FACTORIES[adversary](system)
        outcome = run_erosion_election(system, order=policy, seed=2)
        assert outcome.succeeded

    @pytest.mark.parametrize("adversary", sorted(ADVERSARY_FACTORIES))
    def test_adversaries_compose_with_both_engines(self, adversary):
        # Both engines feed custom policies the full id list every round, so
        # an adversary must produce the same election on either engine.
        rounds = {}
        for engine in ("sweep", "event"):
            system = ParticleSystem.from_shape(hexagon(3), orientation_seed=4)
            policy = ADVERSARY_FACTORIES[adversary](system)
            scheduler = make_scheduler(engine, order=policy, seed=4)
            result = scheduler.run(DLEAlgorithm(), system)
            assert result.terminated
            verify_unique_leader(system)
            rounds[engine] = result.rounds
        assert rounds["sweep"] == rounds["event"]

    def test_adversary_can_slow_dle_down(self):
        # The adversary changes the measured rounds (ordering matters) while
        # correctness is unaffected; on a hexagon the outside-in order delays
        # boundary particles and never speeds the election up.
        shape = hexagon(5)
        baseline_system = ParticleSystem.from_shape(shape, orientation_seed=0)
        baseline = Scheduler(order="round_robin").run(DLEAlgorithm(),
                                                      baseline_system)
        adversary_system = ParticleSystem.from_shape(shape, orientation_seed=0)
        policy = outside_in_order(adversary_system)
        adversarial = Scheduler(order=policy).run(DLEAlgorithm(),
                                                  adversary_system)
        verify_unique_leader(baseline_system)
        verify_unique_leader(adversary_system)
        assert adversarial.rounds >= baseline.rounds
