"""Incremental shape maintenance must be indistinguishable from rebuilds.

The core property of this layer: a :class:`~repro.grid.shape.Shape`
derived through single-point deltas (``with_point`` / ``without`` /
``moved``, or the batched delta replay behind
``ParticleSystem.shape()``) carries exactly the connectivity, holes,
boundary and area a from-scratch ``Shape`` of the same points computes.
The fuzzers below drive both layers through long random
expand/contract/handover/teleport sequences — including hole creation,
splits, merges and temporary disconnection — comparing against a fresh
rebuild after every step.
"""

import random

import pytest

from repro.amoebot.system import ParticleSystem
from repro.grid.coords import neighbors
from repro.grid.generators import make_shape
from repro.grid.shape import Shape

HEX = [(q, r) for q in range(-3, 4) for r in range(-3, 4)
       if abs(q + r) <= 3]


def assert_same_global_state(candidate: Shape, reference_points) -> None:
    """Compare every piece of derived global state against a rebuild."""
    fresh = Shape(reference_points)
    assert candidate.points == fresh.points
    assert candidate.is_connected() == fresh.is_connected()
    assert sorted(tuple(sorted(h)) for h in candidate.holes) == \
        sorted(tuple(sorted(h)) for h in fresh.holes)
    assert candidate.hole_points == fresh.hole_points
    assert candidate.area_points == fresh.area_points
    assert candidate.boundary_points == fresh.boundary_points
    # outer_boundary exercises point_in_outer_face over the patched
    # outer-face set and the hole list together.
    assert candidate.outer_boundary == fresh.outer_boundary


class TestShapeDeltaConstructors:
    def test_without_patches_computed_state(self):
        shape = Shape(HEX)
        shape.holes, shape.is_connected()  # force the memos
        smaller = shape.without((0, 0))
        assert smaller._faces_computed  # patched, not discarded
        assert_same_global_state(smaller, set(HEX) - {(0, 0)})
        # Removing an interior point opens a hole.
        assert smaller.holes == [frozenset({(0, 0)})]

    def test_with_point_fills_hole(self):
        shape = Shape(HEX).without((0, 0))
        shape.holes
        refilled = shape.with_point((0, 0))
        assert refilled.holes == []
        assert_same_global_state(refilled, set(HEX))

    def test_moved_combines_remove_and_add(self):
        shape = Shape(HEX)
        shape.holes, shape.is_connected()
        moved = shape.moved((0, 0), (5, 5))
        expected = (set(HEX) - {(0, 0)}) | {(5, 5)}
        assert not moved.is_connected()  # the target is far away
        assert_same_global_state(moved, expected)

    def test_moved_validates_arguments(self):
        shape = Shape(HEX)
        with pytest.raises(ValueError):
            shape.moved((0, 0), (0, 0))
        with pytest.raises(ValueError):
            shape.moved((99, 99), (98, 98))
        with pytest.raises(ValueError):
            shape.moved((0, 0), (0, 1))  # target occupied

    def test_unrelated_points_keep_behaviour(self):
        shape = Shape(HEX)
        assert shape.without((50, 50)).points == shape.points
        assert shape.with_point((0, 0)).points == shape.points

    def test_hole_split_by_addition(self):
        # A 5x1 cavity; occupying its middle point splits it in two.
        outer = {(q, r) for q in range(-1, 7) for r in range(-1, 3)}
        cavity = {(1, 1), (2, 1), (3, 1), (4, 1), (5, 1)}
        shape = Shape(outer - cavity)
        assert [len(h) for h in shape.holes] == [5]
        split = shape.with_point((3, 1))
        assert sorted(len(h) for h in split.holes) == [2, 2]
        assert_same_global_state(split, (outer - cavity) | {(3, 1)})

    def test_hole_merge_by_removal(self):
        outer = {(q, r) for q in range(-1, 7) for r in range(-1, 3)}
        cavity = {(1, 1), (2, 1), (4, 1), (5, 1)}  # two 2-point holes
        shape = Shape(outer - cavity)
        assert sorted(len(h) for h in shape.holes) == [2, 2]
        merged = shape.without((3, 1))
        assert [len(h) for h in merged.holes] == [5]
        assert_same_global_state(merged, outer - cavity - {(3, 1)})

    def test_breach_and_reseal_ring(self):
        # Breach an annulus: remove a wall point adjacent to the hole so
        # the hole drains into the outer face, then re-add it — the
        # re-addition is an outer-face split that must recreate the hole.
        points = set(make_shape("annulus", 3, seed=0).points)
        hole = set(Shape(points).hole_points)
        assert hole
        wall = next(p for p in sorted(points)
                    if any(u in hole for u in neighbors(p)))
        breached = Shape(points)
        breached.holes, breached.is_connected()
        breached = breached.without(wall)
        assert_same_global_state(breached, points - {wall})
        reclosed = breached.with_point(wall)
        assert_same_global_state(reclosed, points)
        assert reclosed.hole_points == frozenset(hole)

    def test_connectivity_survives_disconnection_and_repair(self):
        line = [(i, 0) for i in range(5)]
        shape = Shape(line)
        assert shape.is_connected()
        cut = shape.without((2, 0))
        assert cut.is_connected() is False
        repaired = cut.with_point((2, 0))
        assert repaired.is_connected()


@pytest.mark.parametrize("seed", range(6))
def test_fuzz_shape_deltas_match_rebuild(seed):
    """Random add/remove/move sequences on a raw Shape."""
    rng = random.Random(seed)
    points = set(make_shape("blob", 4, seed=seed).points)
    shape = Shape(points)
    shape.holes, shape.is_connected()
    for _ in range(120):
        op = rng.random()
        if op < 0.45 and len(points) > 2:
            victim = rng.choice(sorted(points))
            shape = shape.without(victim)
            points.discard(victim)
        elif op < 0.8:
            base = rng.choice(sorted(points))
            candidates = [u for u in neighbors(base) if u not in points]
            if not candidates:
                continue
            target = rng.choice(candidates)
            shape = shape.with_point(target)
            points.add(target)
        else:
            sources = sorted(points)
            src = rng.choice(sources)
            candidates = [u for u in neighbors(src) if u not in points]
            if not candidates or len(points) < 2:
                continue
            dst = rng.choice(candidates)
            shape = shape.moved(src, dst)
            points.discard(src)
            points.add(dst)
        assert_same_global_state(shape, points)
        # Keep the memos warm so the next delta patches them.
        shape.holes, shape.is_connected()


@pytest.mark.parametrize("seed", range(5))
@pytest.mark.parametrize("family", ["hexagon", "holey"])
def test_fuzz_system_shape_tracker_matches_rebuild(family, seed):
    """The acceptance property: random expand / contract / handover /
    teleport sequences keep the incremental ``ParticleSystem.shape()``
    state (connectivity, holes, boundary, area) identical to a
    from-scratch rebuild."""
    rng = random.Random(seed)
    system = ParticleSystem.from_shape(
        make_shape(family, 3, seed=seed), orientation_seed=seed)
    # Force the cached snapshot to carry faces + connectivity so the
    # tracker patches real state, not empty memos.
    system.shape().holes
    system.shape().is_connected()
    for step in range(160):
        particles = system.particles()
        particle = rng.choice(particles)
        op = rng.random()
        if particle.is_expanded:
            # Sometimes hand over instead of contracting.
            contracted_neighbors = [
                q for q in system.neighbors_of(particle) if q.is_contracted
            ]
            if op < 0.3 and contracted_neighbors:
                partner = rng.choice(contracted_neighbors)
                try:
                    system.handover(partner, particle)
                except Exception:
                    system.contract_to_head(particle)
            elif op < 0.65:
                system.contract_to_head(particle)
            else:
                system.contract_to_tail(particle)
        elif op < 0.6:
            free = [u for u in neighbors(particle.head)
                    if not system.is_occupied(u)]
            if free:
                system.expand(particle, rng.choice(free))
        else:
            # Teleport within a small halo to keep the point set dense
            # enough for holes to open and close.
            q, r = particle.head
            target = (q + rng.randint(-2, 2), r + rng.randint(-2, 2))
            if not system.is_occupied(target):
                system.teleport(particle, target)
        if step % 2 == 0:
            snapshot = system.shape()
            assert_same_global_state(snapshot, system.occupied_points())
            # Touch the memos so the next poll patches computed state.
            snapshot.holes
            snapshot.is_connected()
    snapshot = system.shape()
    assert_same_global_state(snapshot, system.occupied_points())
