"""Unit tests for the local shape predicates (Section 2.1 of the paper)."""

import pytest

from repro.grid.coords import neighbor, neighbors
from repro.grid.shape import (
    boundary_count,
    connected_components,
    has_single_local_boundary,
    is_connected,
    is_redundant,
    is_sce_assuming_simply_connected,
    local_boundaries,
    neighbors_in,
    occupied_direction_mask,
)

ORIGIN = (0, 0)


def full_neighborhood():
    """The origin plus its six neighbours (a radius-1 hexagon)."""
    return {ORIGIN, *neighbors(ORIGIN)}


class TestLocalBoundaries:
    def test_interior_point_has_no_local_boundary(self):
        occupied = full_neighborhood()
        assert local_boundaries(ORIGIN, occupied) == []

    def test_isolated_point_single_boundary_of_six(self):
        occupied = {ORIGIN}
        bounds = local_boundaries(ORIGIN, occupied)
        assert len(bounds) == 1
        assert sorted(bounds[0]) == [0, 1, 2, 3, 4, 5]

    def test_line_end_point(self):
        # The end of a line has one occupied neighbour and a single local
        # boundary of five edges (boundary count 3).
        occupied = {ORIGIN, neighbor(ORIGIN, 0)}
        bounds = local_boundaries(ORIGIN, occupied)
        assert len(bounds) == 1
        assert len(bounds[0]) == 5
        assert boundary_count(ORIGIN, occupied) == 3

    def test_line_middle_point_two_boundaries(self):
        # A middle point of a straight line has two opposite occupied
        # neighbours and therefore two local boundaries of two edges each.
        occupied = {neighbor(ORIGIN, 3), ORIGIN, neighbor(ORIGIN, 0)}
        bounds = local_boundaries(ORIGIN, occupied)
        assert len(bounds) == 2
        assert sorted(len(b) for b in bounds) == [2, 2]

    def test_boundary_edges_lead_to_empty_points(self):
        occupied = {ORIGIN, neighbor(ORIGIN, 0), neighbor(ORIGIN, 1)}
        for b in local_boundaries(ORIGIN, occupied):
            for d in b:
                assert neighbor(ORIGIN, d) not in occupied

    def test_boundary_edges_are_cyclically_contiguous(self):
        occupied = {ORIGIN, neighbor(ORIGIN, 2), neighbor(ORIGIN, 5)}
        bounds = local_boundaries(ORIGIN, occupied)
        assert len(bounds) == 2
        for b in bounds:
            for a, c in zip(b, b[1:]):
                assert c == (a + 1) % 6

    def test_all_empty_directions_covered_exactly_once(self):
        occupied = {ORIGIN, neighbor(ORIGIN, 1), neighbor(ORIGIN, 4)}
        bounds = local_boundaries(ORIGIN, occupied)
        covered = [d for b in bounds for d in b]
        assert sorted(covered) == [0, 2, 3, 5]

    def test_three_local_boundaries_possible(self):
        # Alternating occupied neighbours give the maximum of three local
        # boundaries (the paper notes a point has up to 3).
        occupied = {ORIGIN, neighbor(ORIGIN, 0), neighbor(ORIGIN, 2),
                    neighbor(ORIGIN, 4)}
        assert len(local_boundaries(ORIGIN, occupied)) == 3


class TestBoundaryCount:
    @pytest.mark.parametrize("occupied_dirs,expected", [
        ([0], 3),            # one occupied neighbour -> |B| = 5
        ([0, 1], 2),         # two adjacent occupied neighbours -> |B| = 4
        ([0, 1, 2], 1),      # three in a row -> |B| = 3 (strictly convex)
        ([0, 1, 2, 3], 0),   # four in a row -> |B| = 2 (straight boundary)
        ([0, 1, 2, 3, 4], -1),  # five occupied -> |B| = 1 (concave)
    ])
    def test_counts_match_figure_6(self, occupied_dirs, expected):
        occupied = {ORIGIN} | {neighbor(ORIGIN, d) for d in occupied_dirs}
        assert boundary_count(ORIGIN, occupied) == expected

    def test_count_requires_unique_boundary_when_implicit(self):
        occupied = {neighbor(ORIGIN, 3), ORIGIN, neighbor(ORIGIN, 0)}
        with pytest.raises(ValueError):
            boundary_count(ORIGIN, occupied)

    def test_count_with_explicit_boundary(self):
        occupied = {neighbor(ORIGIN, 3), ORIGIN, neighbor(ORIGIN, 0)}
        bounds = local_boundaries(ORIGIN, occupied)
        for b in bounds:
            assert boundary_count(ORIGIN, occupied, b) == 0

    def test_count_in_range(self):
        # For any configuration with at least one occupied neighbour the
        # count lies in {-1, ..., 3}.
        import itertools
        for k in range(1, 6):
            for combo in itertools.combinations(range(6), k):
                occupied = {ORIGIN} | {neighbor(ORIGIN, d) for d in combo}
                for b in local_boundaries(ORIGIN, occupied):
                    assert -1 <= len(b) - 2 <= 3


class TestRedundantAndSCE:
    def test_interior_point_is_redundant(self):
        assert is_redundant(ORIGIN, full_neighborhood())

    def test_line_middle_not_redundant(self):
        occupied = {neighbor(ORIGIN, 3), ORIGIN, neighbor(ORIGIN, 0)}
        assert not is_redundant(ORIGIN, occupied)

    def test_line_end_redundant_and_sce(self):
        occupied = {ORIGIN, neighbor(ORIGIN, 0)}
        assert is_redundant(ORIGIN, occupied)
        assert is_sce_assuming_simply_connected(ORIGIN, occupied)

    def test_straight_boundary_point_not_sce(self):
        # Boundary count 0 is erodable but not strictly convex.
        occupied = {ORIGIN} | {neighbor(ORIGIN, d) for d in (0, 1, 2, 3)}
        assert is_redundant(ORIGIN, occupied)
        assert has_single_local_boundary(ORIGIN, occupied)
        assert not is_sce_assuming_simply_connected(ORIGIN, occupied)

    def test_concave_point_not_sce(self):
        occupied = {ORIGIN} | {neighbor(ORIGIN, d) for d in (0, 1, 2, 3, 4)}
        assert not is_sce_assuming_simply_connected(ORIGIN, occupied)

    def test_point_with_two_boundaries_not_sce(self):
        occupied = {neighbor(ORIGIN, 3), ORIGIN, neighbor(ORIGIN, 0)}
        assert not is_sce_assuming_simply_connected(ORIGIN, occupied)


class TestNeighborHelpers:
    def test_neighbors_in(self):
        occupied = {ORIGIN, neighbor(ORIGIN, 0), neighbor(ORIGIN, 3), (9, 9)}
        result = neighbors_in(ORIGIN, occupied)
        assert set(result) == {neighbor(ORIGIN, 0), neighbor(ORIGIN, 3)}

    def test_occupied_direction_mask(self):
        occupied = {ORIGIN, neighbor(ORIGIN, 2)}
        mask = occupied_direction_mask(ORIGIN, occupied)
        assert mask == [False, False, True, False, False, False]


class TestConnectivity:
    def test_empty_set_not_connected(self):
        assert not is_connected(set())

    def test_single_point_connected(self):
        assert is_connected({ORIGIN})

    def test_two_adjacent_points_connected(self):
        assert is_connected({ORIGIN, neighbor(ORIGIN, 4)})

    def test_two_far_points_disconnected(self):
        assert not is_connected({ORIGIN, (10, 10)})

    def test_connected_components_partition(self):
        points = {ORIGIN, neighbor(ORIGIN, 0), (10, 10), (11, 10), (20, -20)}
        components = connected_components(points)
        assert len(components) == 3
        union = set()
        for c in components:
            assert not (union & c)
            union |= c
        assert union == points

    def test_components_internally_connected(self):
        points = {ORIGIN, neighbor(ORIGIN, 0), (10, 10), (11, 10)}
        for component in connected_components(points):
            assert is_connected(component)
