"""Tests for the experiment drivers, fitting helpers and report tables."""

import math

import pytest

from repro.analysis.experiments import (
    ALGORITHMS,
    TABLE1_ALGORITHMS,
    ExperimentRecord,
    run_experiment,
    run_scaling_experiment,
    run_table1_experiment,
)
from repro.analysis.fitting import fit_linear, fit_power_law
from repro.analysis.tables import (
    format_records,
    format_scaling_series,
    format_table,
    format_table1,
    summarize_scaling,
)
from repro.grid.generators import annulus, hexagon, make_shape


class TestFitting:
    def test_linear_fit_exact(self):
        xs = [1, 2, 3, 4]
        ys = [3, 5, 7, 9]
        fit = fit_linear(xs, ys)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_power_fit_exact(self):
        xs = [1, 2, 4, 8]
        ys = [3 * x ** 2 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(2.0)
        assert fit.scale == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_power_fit_linear_data(self):
        xs = [2, 4, 8, 16, 32]
        ys = [5 * x for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.0)

    def test_fit_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [2])

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1])

    def test_power_fit_rejects_non_positive(self):
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])

    def test_linear_fit_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_linear([2, 2, 2], [1, 2, 3])


class TestRunExperiment:
    def test_dle_record_fields(self):
        shape = hexagon(2)
        record = run_experiment("dle", shape, family="hexagon", size=2, seed=1)
        assert record.algorithm == "dle"
        assert record.succeeded
        assert record.rounds > 0
        assert record.metrics.n == len(shape)
        row = record.as_row()
        assert row["D_A"] == record.metrics.area_diameter
        assert row["ok"] is True

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            run_experiment("magic", hexagon(1))

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_every_algorithm_runs_on_small_hexagon(self, algorithm):
        record = run_experiment(algorithm, hexagon(2), family="hexagon",
                                size=2, seed=0)
        assert record.rounds >= 0
        assert isinstance(record.succeeded, bool)

    def test_erosion_failure_recorded_not_raised(self):
        record = run_experiment("erosion", annulus(4, 1), family="annulus",
                                size=1, seed=0)
        assert not record.succeeded

    def test_scaling_experiment_sizes(self):
        records = run_scaling_experiment("dle", "hexagon", sizes=(1, 2, 3), seed=0)
        assert [r.size for r in records] == [1, 2, 3]
        assert all(r.family == "hexagon" for r in records)
        rounds = [r.rounds for r in records]
        assert rounds == sorted(rounds)

    def test_table1_experiment_structure(self):
        records = run_table1_experiment(sizes=(2,), families=("hexagon",),
                                        algorithms=("dle", "randomized"))
        assert len(records) == 2
        assert {r.algorithm for r in records} == {"dle", "randomized"}

    def test_table1_default_algorithms_registered(self):
        for name in TABLE1_ALGORITHMS:
            assert name in ALGORITHMS


class TestTables:
    def _records(self):
        return run_scaling_experiment("dle", "hexagon", sizes=(1, 2, 3), seed=0)

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, ["a", "b"], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no data)" in format_table([], ["a"])

    def test_format_records_contains_metrics(self):
        text = format_records(self._records(), title="dle scaling")
        assert "dle scaling" in text
        assert "D_A" in text
        assert "rounds" in text

    def test_format_table1_mentions_paper_rows(self):
        records = run_table1_experiment(sizes=(2,), families=("hexagon",),
                                        algorithms=("dle", "erosion"))
        text = format_table1(records)
        assert "This paper" in text
        assert "erosion" in text

    def test_scaling_series_reports_fits(self):
        text = format_scaling_series(self._records(), "D_A", title="fig")
        assert "linear fit" in text
        assert "power fit" in text

    def test_summarize_scaling_linear_for_dle(self):
        summary = summarize_scaling(self._records(), "D_A")
        assert summary["points"] == 3
        # DLE rounds are essentially D_A, so the exponent is close to one.
        assert 0.5 <= summary["exponent"] <= 1.5

    def test_bool_and_float_formatting(self):
        text = format_table([{"ok": True, "x": 1.23456}], ["ok", "x"])
        assert "yes" in text
        assert "1.23" in text
