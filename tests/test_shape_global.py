"""Tests for the global Shape structure: boundaries, holes, v-node rings.

These tests check the geometric observations the paper's analysis rests on
(Observation 1, Observation 4, Propositions 6 and 7) on concrete shapes.
"""

import pytest

from repro.grid.coords import neighbor, neighbors
from repro.grid.generators import (
    annulus,
    comb,
    hexagon,
    hexagon_with_holes,
    line_shape,
    parallelogram,
    random_blob,
    spiral,
)
from repro.grid.metrics import compute_metrics
from repro.grid.shape import Shape

ORIGIN = (0, 0)


def triangle_like():
    """A simply connected irregular test shape (a filled triangular wedge)."""
    from repro.grid.generators import triangle

    return triangle(6)


class TestBasics:
    def test_len_and_contains(self):
        shape = hexagon(2)
        assert len(shape) == 19
        assert ORIGIN in shape
        assert (10, 10) not in shape

    def test_equality_with_sets(self):
        shape = Shape([(0, 0), (1, 0)])
        assert shape == {(0, 0), (1, 0)}
        assert shape == Shape([(1, 0), (0, 0)])

    def test_without_and_with_point(self):
        shape = hexagon(1)
        smaller = shape.without(ORIGIN)
        assert ORIGIN not in smaller
        assert len(smaller) == len(shape) - 1
        assert ORIGIN in smaller.with_point(ORIGIN)

    def test_translated(self):
        shape = hexagon(1).translated(5, -3)
        assert (5, -3) in shape
        assert len(shape) == 7

    def test_iteration_is_sorted(self):
        shape = Shape([(2, 0), (0, 0), (1, 0)])
        assert list(shape) == [(0, 0), (1, 0), (2, 0)]

    def test_centroid_point_is_in_shape(self):
        for shape in (hexagon(3), line_shape(9), random_blob(40, seed=3)):
            assert shape.centroid_point() in shape


class TestHolesAndFaces:
    def test_hexagon_has_no_holes(self):
        assert hexagon(3).holes == []
        assert hexagon(3).is_simply_connected()

    def test_punctured_hexagon_has_one_hole(self):
        shape = hexagon(2).without(ORIGIN)
        assert len(shape.holes) == 1
        assert shape.hole_points == {ORIGIN}
        assert not shape.is_simply_connected()

    def test_annulus_hole_size(self):
        shape = annulus(4, 2)
        # The hole is the filled hexagon of radius 2: 19 points.
        assert len(shape.holes) == 1
        assert len(shape.holes[0]) == 1 + 3 * 2 * 3

    def test_hexagon_with_holes_hole_count(self):
        shape = hexagon_with_holes(7)
        assert len(shape.holes) >= 2

    def test_area_is_shape_plus_holes(self):
        shape = annulus(4, 1)
        area = shape.area_points
        assert area == shape.points | shape.hole_points
        assert len(area) == len(shape) + len(shape.hole_points)

    def test_point_in_outer_face(self):
        shape = annulus(4, 1)
        assert shape.point_in_outer_face((100, 100))
        assert shape.point_in_outer_face(neighbor((0, 4), 1))  is not None
        assert not shape.point_in_outer_face(ORIGIN)  # hole point
        assert shape.point_in_hole(ORIGIN)

    def test_occupied_point_is_in_no_face(self):
        shape = hexagon(2)
        assert not shape.point_in_outer_face((0, 2))
        assert not shape.point_in_hole((0, 2))

    def test_line_is_simply_connected(self):
        assert line_shape(12).is_simply_connected()

    def test_spiral_is_simply_connected(self):
        assert spiral(6, 3).is_simply_connected()


class TestBoundaries:
    def test_hexagon_outer_boundary_length(self):
        for radius in (1, 2, 3, 4):
            shape = hexagon(radius)
            assert shape.outer_boundary_length == 6 * radius

    def test_line_boundary_is_everything(self):
        shape = line_shape(7)
        assert shape.boundary_points == shape.points
        assert shape.outer_boundary == shape.points

    def test_interior_plus_boundary_partition(self):
        shape = hexagon(3)
        assert shape.interior_points | shape.boundary_points == shape.points
        assert not (shape.interior_points & shape.boundary_points)

    def test_hexagon_interior_is_smaller_hexagon(self):
        shape = hexagon(3)
        assert shape.interior_points == hexagon(2).points

    def test_annulus_has_inner_and_outer_boundary(self):
        shape = annulus(5, 2)
        outer = shape.outer_boundary
        inner = shape.inner_boundaries
        assert len(inner) == 1
        assert outer
        assert inner[0]
        assert not (outer & inner[0])

    def test_inner_boundary_adjacent_to_hole(self):
        shape = annulus(4, 1)
        hole = shape.holes[0]
        for p in shape.inner_boundary(0):
            assert any(u in hole for u in neighbors(p))

    def test_max_boundary_length(self):
        shape = annulus(5, 2)
        assert shape.max_boundary_length == max(
            shape.outer_boundary_length, len(shape.inner_boundaries[0])
        )

    def test_outer_boundary_subset_of_boundary(self):
        for shape in (hexagon(3), annulus(5, 2), comb(4, 3)):
            assert shape.outer_boundary <= shape.boundary_points


class TestErodableAndSCE:
    def test_proposition7_simply_connected_has_sce_point(self):
        # Proposition 7: every simply connected shape with >= 2 points has an
        # SCE point.
        candidates = [hexagon(2), line_shape(5), parallelogram(4, 3),
                      comb(3, 4), spiral(4, 3), random_blob(60, seed=1)]
        # Random blobs occasionally enclose a hole; Proposition 7 only talks
        # about simply connected shapes, so skip those instances.
        for shape in candidates:
            if not shape.is_simply_connected():
                continue
            assert shape.sce_points(), f"no SCE point in {shape!r}"

    def test_erodable_iff_single_outer_local_boundary(self):
        # Proposition 6 on a shape with a hole: hole-adjacent points with a
        # single local boundary facing the hole are NOT erodable.
        shape = hexagon(2).without(ORIGIN)
        for point in shape.points:
            erodable = shape.is_erodable(point)
            bounds = shape.local_boundaries(point)
            if erodable:
                assert len(bounds) == 1
                assert any(shape.point_in_outer_face(neighbor(point, d))
                           for d in bounds[0])

    def test_hexagon_corner_is_sce(self):
        shape = hexagon(2)
        corner = (2, 0)
        assert shape.is_sce(corner)
        assert shape.boundary_count(corner) == 1

    def test_hexagon_edge_midpoint_not_sce(self):
        shape = hexagon(2)
        # (1, 1) lies on the SE edge between two corners: boundary count 0.
        point = (1, 1)
        assert point in shape.boundary_points
        assert shape.is_erodable(point)
        assert not shape.is_sce(point)

    def test_interior_point_not_erodable(self):
        shape = hexagon(2)
        assert not shape.is_erodable(ORIGIN)

    def test_erosion_preserves_simple_connectivity(self):
        # Observation 5: removing an erodable point keeps the shape simply
        # connected.  Erode a hexagon all the way down.
        shape = hexagon(2)
        while len(shape) > 1:
            sce = shape.sce_points()
            assert sce
            shape = shape.without(sce[0])
            assert shape.is_simply_connected()

    def test_queries_for_missing_point_raise(self):
        shape = hexagon(1)
        with pytest.raises(ValueError):
            shape.is_erodable((10, 10))
        with pytest.raises(ValueError):
            shape.local_boundaries((10, 10))


class TestVirtualRings:
    def test_observation4_outer_ring_sums_to_six(self):
        for shape in (hexagon(1), hexagon(3), line_shape(6), comb(3, 3),
                      parallelogram(5, 2), random_blob(50, seed=7)):
            assert shape.outer_ring().total_count == 6

    def test_observation4_inner_rings_sum_to_minus_six(self):
        for shape in (annulus(4, 1), annulus(5, 2), hexagon_with_holes(7)):
            inner = shape.inner_rings()
            assert inner
            for ring in inner:
                assert ring.total_count == -6

    def test_number_of_rings_is_one_plus_holes(self):
        for shape in (hexagon(3), annulus(4, 1), hexagon_with_holes(7)):
            assert len(shape.virtual_rings()) == 1 + len(shape.holes)

    def test_outer_ring_first(self):
        rings = annulus(4, 1).virtual_rings()
        assert rings[0].is_outer
        assert all(not r.is_outer for r in rings[1:])

    def test_ring_points_cover_boundaries(self):
        shape = annulus(4, 1)
        assert shape.outer_ring().points == shape.outer_boundary
        inner_points = set()
        for ring in shape.inner_rings():
            inner_points |= ring.points
        assert inner_points == shape.inner_boundaries[0]

    def test_line_ring_visits_points_twice(self):
        # Every interior point of a line has two local boundaries, so the
        # single ring has 2n - 2 v-nodes.
        n = 6
        shape = line_shape(n)
        ring = shape.outer_ring()
        assert len(ring) == 2 * n - 2

    def test_hexagon_ring_length_equals_boundary(self):
        shape = hexagon(3)
        assert len(shape.outer_ring()) == shape.outer_boundary_length

    def test_clockwise_successor_common_point_unoccupied(self):
        shape = hexagon(2)
        for vnode in shape.all_vnodes():
            successor, common = shape.clockwise_successor(vnode)
            assert common not in shape
            assert successor.point in shape

    def test_successor_relation_is_cyclic(self):
        shape = random_blob(30, seed=5)
        ring = shape.outer_ring()
        # Following the successor len(ring) times returns to the start.
        current = ring.vnodes[0]
        for _ in range(len(ring)):
            current, _ = shape.clockwise_successor(current)
        assert current == ring.vnodes[0]

    def test_single_point_shape_has_no_rings(self):
        with pytest.raises(ValueError):
            Shape([ORIGIN]).virtual_rings()


class TestObservation1:
    def test_area_diameter_at_most_diameter(self):
        # Observation 1 (1): D_A <= D.
        for shape in (annulus(5, 2), hexagon_with_holes(7), hexagon(3)):
            metrics = compute_metrics(shape)
            assert metrics.area_diameter <= metrics.diameter

    def test_simply_connected_n_le_quadratic_in_diameter(self):
        # Observation 1 (2): n = O(D^2); concretely n <= 1 + 3 D (D + 1) / ...
        # the loosest safe concrete form: n <= (D + 1)^2 * 3.
        for shape in (hexagon(3), parallelogram(6, 3), triangle_like()):
            metrics = compute_metrics(shape)
            assert metrics.n <= 3 * (metrics.diameter + 1) ** 2

    def test_simply_connected_outer_boundary_at_least_diameter(self):
        # Observation 1 (3): L_out >= D for simply connected shapes.
        for shape in (hexagon(3), line_shape(9), comb(4, 4), triangle_like()):
            metrics = compute_metrics(shape)
            assert metrics.l_out >= metrics.diameter
