"""Tests for ``repro.lint`` — the determinism & state-protocol analyzer.

Three layers:

* fixture snippets per rule family (a seeded violation is caught, the
  suppressed variant is not, the clean variant never fires),
* the runner and CLI surfaces (roles, reports, exit codes, the JSON
  artifact the CI gate uploads),
* the repository itself: ``lint --self`` must be clean, the golden
  ``dle+collect`` traces must not move (regression for the D102 hardening
  of ``collect._final_reconnect``), and the mypy strict-module list must
  stay fully annotated.
"""

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import make_shape, run_experiment
from repro.cli import main
from repro.lint import (
    DEFAULT_SELF_PATHS,
    RULE_TYPES,
    Finding,
    ModuleContext,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register_rule,
    role_for_path,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPECTED_RULES = {
    "D101", "D102", "D103", "D104",
    "S201", "S202", "S203",
    "T301", "T302",
    "L401", "L402",
    "A501", "A502", "A503",
}


def codes(findings):
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# Framework
# ---------------------------------------------------------------------------

class TestFramework:
    def test_all_families_registered(self):
        assert EXPECTED_RULES <= set(RULE_TYPES)

    def test_all_rules_sorted_and_described(self):
        rules = all_rules()
        assert [rule.code for rule in rules] == sorted(RULE_TYPES)
        for rule in rules:
            assert rule.name and rule.description
            assert set(rule.roles) <= {"src", "tests", "examples",
                                       "benchmarks"}

    def test_duplicate_code_rejected(self):
        class Clone(Rule):
            code = "D101"
            name = "clone"

        with pytest.raises(ValueError, match="duplicate"):
            register_rule(Clone)

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError, match="unknown lint role"):
            ModuleContext("x.py", "pass\n", role="vendored")

    def test_finding_format(self):
        finding = Finding(rule="D101", path="a.py", line=3, col=5,
                          message="boom")
        assert finding.format() == "a.py:3:5: D101 boom"
        assert finding.to_dict() == {"rule": "D101", "path": "a.py",
                                     "line": 3, "col": 5, "message": "boom"}

    def test_suppression_table(self):
        module = ModuleContext("x.py", (
            "a = 1  # repro: lint-ok[D102]\n"
            "b = 2  # repro: lint-ok[D102, S203]\n"
            "c = 3  # repro: lint-ok[*]\n"
            "d = 4\n"))
        assert module.suppressed("D102", 1)
        assert not module.suppressed("D101", 1)
        assert module.suppressed("S203", 2)
        assert module.suppressed("T301", 3)
        assert not module.suppressed("D102", 4)


# ---------------------------------------------------------------------------
# D-rules: determinism
# ---------------------------------------------------------------------------

D101_VIOLATION = """
import random

def pick(items):
    return random.choice(items)
"""

D101_FROM_IMPORT = """
from random import shuffle

def scramble(items):
    shuffle(items)
"""

D101_NUMPY = """
import numpy as np

def noise(n):
    return np.random.rand(n)
"""

D101_CLEAN = """
import random

def pick(items, seed):
    rng = random.Random(seed)
    return rng.choice(items)
"""


class TestD101UnseededRandom:
    def test_module_global_call_caught(self):
        assert codes(lint_source(D101_VIOLATION)) == ["D101"]

    def test_from_import_caught(self):
        assert codes(lint_source(D101_FROM_IMPORT)) == ["D101"]

    def test_numpy_legacy_global_caught(self):
        assert codes(lint_source(D101_NUMPY)) == ["D101"]

    def test_system_random_caught(self):
        source = "import random\nr = random.SystemRandom()\n"
        assert codes(lint_source(source)) == ["D101"]

    def test_seeded_instance_clean(self):
        assert lint_source(D101_CLEAN) == []

    def test_numpy_default_rng_clean(self):
        source = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(source) == []

    def test_suppressed(self):
        source = D101_VIOLATION.replace(
            "random.choice(items)",
            "random.choice(items)  # repro: lint-ok[D101] test shim")
        assert lint_source(source) == []

    def test_off_in_tests_role(self):
        assert lint_source(D101_VIOLATION, role="tests") == []


D102_LIST_OVER_SET = """
def trace(ids):
    pending = {3, 1, 2}
    return list(pending)
"""

D102_COMPREHENSION = """
def trace(ids):
    pending = set(ids)
    return [i * 2 for i in pending]
"""

D102_APPEND_LOOP = """
def trace(ids):
    pending = frozenset(ids)
    out = []
    for i in pending:
        out.append(i)
    return out
"""

D102_ATTRIBUTE = """
class Collector:
    def __init__(self, ids):
        self.collected = set(ids)

    def order(self):
        return list(self.collected)
"""

D102_CLEAN = """
def trace(ids):
    pending = set(ids)
    count = len(pending)
    return sorted(pending), count, max(pending)
"""


class TestD102UnorderedIteration:
    def test_list_over_set_caught(self):
        assert codes(lint_source(D102_LIST_OVER_SET)) == ["D102"]

    def test_comprehension_caught(self):
        assert codes(lint_source(D102_COMPREHENSION)) == ["D102"]

    def test_append_loop_caught(self):
        assert codes(lint_source(D102_APPEND_LOOP)) == ["D102"]

    def test_set_attribute_caught(self):
        assert codes(lint_source(D102_ATTRIBUTE)) == ["D102"]

    def test_order_free_consumers_clean(self):
        assert lint_source(D102_CLEAN) == []

    def test_membership_loop_clean(self):
        source = (
            "def check(ids, wanted):\n"
            "    pending = set(ids)\n"
            "    hits = 0\n"
            "    for i in pending:\n"
            "        if i in wanted:\n"
            "            hits += 1\n"
            "    return hits\n")
        assert lint_source(source) == []

    def test_suppressed(self):
        source = D102_LIST_OVER_SET.replace(
            "return list(pending)",
            "return list(pending)  # repro: lint-ok[D102] order-free sink")
        assert lint_source(source) == []


D103_VIOLATION = """
import hashlib
import time

def result_digest(payload):
    h = hashlib.sha256()
    h.update(str(time.time()).encode("utf-8"))
    return h.hexdigest()
"""

D104_VIOLATION = """
import hashlib
import json

def cache_key(config):
    return hashlib.sha256(json.dumps(config).encode("utf-8")).hexdigest()
"""


class TestD103D104Digests:
    def test_wallclock_in_digest_caught(self):
        assert codes(lint_source(D103_VIOLATION)) == ["D103"]

    def test_wallclock_outside_digest_clean(self):
        source = "import time\n\ndef elapsed(start):\n" \
                 "    return time.time() - start\n"
        assert lint_source(source) == []

    def test_unsorted_json_caught(self):
        assert codes(lint_source(D104_VIOLATION)) == ["D104"]

    def test_sorted_json_clean(self):
        source = D104_VIOLATION.replace("json.dumps(config)",
                                        "json.dumps(config, sort_keys=True)")
        assert lint_source(source) == []


# ---------------------------------------------------------------------------
# S-rules: state protocol
# ---------------------------------------------------------------------------

S201_VIOLATION = """
class HalfProtocol:
    def snapshot_state(self):
        return {"x": 1}
"""

S202_VIOLATION = """
class Drifted:
    def snapshot_state(self):
        return {"x": self.x, "y": self.y}

    def restore_state(self, state):
        self.x = state["x"]
"""

S203_VIOLATION = """
class Uncovered:
    def __init__(self):
        self.count = 0
        self._cache = {}

    def bump(self):
        self.count += 1
        self._cache.clear()

    def snapshot_state(self):
        return {"rounds": 1}

    def restore_state(self, state):
        self.rounds = state["rounds"]
"""

S_CLEAN = """
class Covered:
    def __init__(self):
        self.count = 0
        self._cache = {}

    def bump(self):
        self.count += 1

    def snapshot_state(self):
        return {"count": self.count}

    def restore_state(self, state):
        self.count = state["count"]
"""


class TestStateProtocol:
    def test_missing_restore_caught(self):
        assert codes(lint_source(S201_VIOLATION)) == ["S201"]

    def test_missing_snapshot_caught(self):
        source = S201_VIOLATION.replace("snapshot_state", "restore_state")
        assert codes(lint_source(source)) == ["S201"]

    def test_key_drift_caught_both_directions(self):
        findings = lint_source(S202_VIOLATION)
        assert codes(findings) == ["S202"]
        assert "'y'" in findings[0].message
        read_only = S202_VIOLATION.replace('"y": self.y}', '}')
        findings = lint_source(read_only)
        assert findings == []
        missing_write = (
            "class Drifted:\n"
            "    def snapshot_state(self):\n"
            "        return {\"x\": self.x}\n"
            "    def restore_state(self, state):\n"
            "        self.x = state[\"x\"]\n"
            "        self.y = state[\"y\"]\n")
        findings = lint_source(missing_write)
        assert codes(findings) == ["S202"]
        assert "never writes" in findings[0].message

    def test_dynamic_snapshot_not_checked(self):
        source = (
            "class Dynamic:\n"
            "    def snapshot_state(self):\n"
            "        return dict(self._fields)\n"
            "    def restore_state(self, state):\n"
            "        self.x = state[\"x\"]\n")
        assert lint_source(source) == []

    def test_uncovered_mutable_attr_caught(self):
        findings = lint_source(S203_VIOLATION)
        assert codes(findings) == ["S203"]
        assert "count" in findings[0].message

    def test_underscore_cache_exempt_and_covered_clean(self):
        assert lint_source(S_CLEAN) == []


# ---------------------------------------------------------------------------
# T-rules: telemetry
# ---------------------------------------------------------------------------

T301_VIOLATION = """
def save(log, path):
    log.span("checkpoint.save", path=path)
    do_write(path)
"""

T301_CLEAN = """
def save(log, path):
    with log.span("checkpoint.save", path=path):
        do_write(path)
"""

T302_VIOLATION = """
from repro.telemetry import counter

def record():
    counter("cache.hitz").inc()
"""


class TestTelemetryRules:
    def test_bare_span_caught(self):
        assert codes(lint_source(T301_VIOLATION)) == ["T301"]

    def test_with_span_clean(self):
        assert lint_source(T301_CLEAN) == []

    def test_unknown_metric_caught(self):
        findings = lint_source(T302_VIOLATION)
        assert codes(findings) == ["T302"]
        assert "cache.hitz" in findings[0].message

    def test_known_metric_clean(self):
        source = T302_VIOLATION.replace("cache.hitz", "cache.hits")
        assert lint_source(source) == []

    def test_declared_prefix_composition_clean(self):
        source = (
            "from repro.telemetry import counter\n"
            "def record(source):\n"
            "    counter(\"sweep.\" + source).inc()\n")
        assert lint_source(source) == []

    def test_undeclared_prefix_composition_caught(self):
        source = (
            "from repro.telemetry import counter\n"
            "def record(source):\n"
            "    counter(\"bogus.\" + source).inc()\n")
        assert codes(lint_source(source)) == ["T302"]

    def test_fully_dynamic_name_skipped(self):
        source = (
            "from repro.telemetry import counter\n"
            "def record(name):\n"
            "    counter(name).inc()\n")
        assert lint_source(source) == []


# ---------------------------------------------------------------------------
# L-rules: lock discipline
# ---------------------------------------------------------------------------

L401_VIOLATION = """
class Board:
    def claim(self):
        with self._lock:
            with self._counter_lock:
                pass

    def note(self):
        with self._counter_lock:
            with self._lock:
                pass
"""

L401_CLEAN = """
class Board:
    def claim(self):
        with self._lock:
            with self._counter_lock:
                pass

    def note(self):
        with self._lock:
            with self._counter_lock:
                pass
"""

L402_LEXICAL = """
class Board:
    def claim(self):
        with self._lock:
            with self._lock:
                pass
"""

L402_TRANSITIVE = """
class Board:
    def claim(self):
        with self._lock:
            self.note()

    def note(self):
        with self._lock:
            pass
"""


class TestLockRules:
    def test_opposite_nesting_is_a_cycle(self):
        findings = lint_source(L401_VIOLATION)
        assert codes(findings) == ["L401"]
        assert "_lock" in findings[0].message

    def test_consistent_order_clean(self):
        assert lint_source(L401_CLEAN) == []

    def test_transitive_cycle_through_method_call(self):
        source = (
            "class Board:\n"
            "    def claim(self):\n"
            "        with self._lock:\n"
            "            self.note()\n"
            "    def note(self):\n"
            "        with self._counter_lock:\n"
            "            pass\n"
            "    def other(self):\n"
            "        with self._counter_lock:\n"
            "            with self._lock:\n"
            "                pass\n")
        assert "L401" in codes(lint_source(source))

    def test_lexical_reacquisition_caught(self):
        assert codes(lint_source(L402_LEXICAL)) == ["L402"]

    def test_transitive_reacquisition_caught(self):
        findings = lint_source(L402_TRANSITIVE)
        assert codes(findings) == ["L402"]
        assert "note()" in findings[0].message

    def test_separate_counter_lock_clean(self):
        source = L402_TRANSITIVE.replace(
            "    def note(self):\n        with self._lock:",
            "    def note(self):\n        with self._counter_lock:")
        assert lint_source(source) == []


# ---------------------------------------------------------------------------
# A-rules: API hygiene
# ---------------------------------------------------------------------------

A501_VIOLATION = """
__all__ = ["present", "missing"]

def present():
    pass
"""

A502_VIOLATION = """
from repro.core.dle import DLEAlgorithm
"""

A503_VIOLATION = """
def drive(system, algorithm):
    return run_algorithm(system, algorithm, scheduler_order="random")
"""


class TestApiHygiene:
    def test_dangling_export_caught(self):
        findings = lint_source(A501_VIOLATION)
        assert codes(findings) == ["A501"]
        assert "'missing'" in findings[0].message

    def test_internal_import_caught_in_benchmarks(self):
        assert codes(lint_source(A502_VIOLATION,
                                 role="benchmarks")) == ["A502"]
        assert codes(lint_source("import repro.orchestrator\n",
                                 role="examples")) == ["A502"]

    def test_facade_import_clean(self):
        assert lint_source("from repro.api import run_sweep\n",
                           role="benchmarks") == []
        assert lint_source("from repro import api\n", role="examples") == []

    def test_internal_import_allowed_in_src(self):
        assert lint_source(A502_VIOLATION, role="src") == []

    def test_deprecated_scheduler_order_caught(self):
        assert codes(lint_source(A503_VIOLATION)) == ["A503"]

    def test_deprecated_rng_on_shim_target_caught(self):
        source = ("def drive(system, algorithm):\n"
                  "    return run_algorithm(system, algorithm, rng=3)\n")
        assert codes(lint_source(source)) == ["A503"]

    def test_live_rng_argument_clean(self):
        source = ("def rebuild(data, generator):\n"
                  "    return decode_rng(data, rng=generator)\n")
        assert lint_source(source) == []


# ---------------------------------------------------------------------------
# Acceptance: one injected violation per family is demonstrably caught
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("family,source,role", [
    ("D", D101_VIOLATION, "src"),
    ("S", S202_VIOLATION, "src"),
    ("T", T301_VIOLATION, "src"),
    ("L", L401_VIOLATION, "src"),
    ("A", A502_VIOLATION, "benchmarks"),
])
def test_injected_violation_caught(family, source, role):
    findings = lint_source(source, role=role)
    assert findings, f"{family}-family violation not caught"
    assert all(finding.rule.startswith(family) for finding in findings)


# ---------------------------------------------------------------------------
# Runner and CLI
# ---------------------------------------------------------------------------

class TestRunner:
    def test_role_for_path(self):
        root = Path("/repo")
        assert role_for_path(Path("/repo/src/repro/cli.py"), root) == "src"
        assert role_for_path(Path("/repo/tests/test_cli.py"),
                             root) == "tests"
        assert role_for_path(Path("/repo/benchmarks/conftest.py"),
                             root) == "benchmarks"
        assert role_for_path(Path("/repo/examples/quickstart.py"),
                             root) == "examples"

    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n")
        assert codes(findings) == ["X001"]

    def test_select_by_family_and_code(self):
        both = D101_VIOLATION + D102_LIST_OVER_SET
        assert codes(lint_source(both)) == ["D101", "D102"]
        assert codes(lint_source(both, select=["D102"])) == ["D102"]
        assert codes(lint_source(both, select=["D"])) == ["D101", "D102"]
        assert codes(lint_source(both, ignore=["D"])) == []

    def test_lint_paths_report(self, tmp_path):
        (tmp_path / "good.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(D101_VIOLATION)
        report = lint_paths([tmp_path], root=tmp_path)
        assert not report.ok
        assert report.files_checked == 2
        assert report.counts_by_rule() == {"D101": 1}
        document = report.to_dict()
        assert document["kind"] == "repro-lint-report"
        assert document["version"] == 1
        assert document["findings"][0]["rule"] == "D101"


class TestLintCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "clean (1 files)" in capsys.readouterr().out

    def test_violation_exits_one_and_writes_artifact(self, tmp_path,
                                                     capsys):
        target = tmp_path / "mod.py"
        target.write_text(D101_VIOLATION)
        artifact = tmp_path / "out" / "findings.json"
        assert main(["lint", str(target), "--json", str(artifact)]) == 1
        out = capsys.readouterr().out
        assert "D101" in out and "1 finding" in out
        document = json.loads(artifact.read_text())
        assert document["ok"] is False
        assert document["counts"] == {"D101": 1}

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(D101_VIOLATION)
        assert main(["lint", str(target), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["findings"][0]["rule"] == "D101"

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.py"
        assert main(["lint", str(missing)]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in sorted(EXPECTED_RULES):
            assert code in out


# ---------------------------------------------------------------------------
# The repository's own gates
# ---------------------------------------------------------------------------

def test_repository_is_lint_clean():
    """The CI gate in test form: the repo lints clean, examples and
    benchmarks included (so the facade-only A-rules are enforced)."""
    paths = [REPO_ROOT / name for name in DEFAULT_SELF_PATHS
             if (REPO_ROOT / name).exists()]
    assert any(path.name == "benchmarks" for path in paths)
    assert any(path.name == "examples" for path in paths)
    report = lint_paths(paths, root=REPO_ROOT)
    assert report.ok, "\n" + report.format_human()
    assert report.files_checked > 50


#: Golden round counts for dle+collect, captured before the D102 hardening
#: of ``CollectSimulator._final_reconnect`` (max over a generator instead of
#: a hash-ordered list) and identical after it: the trace did not move.
GOLDEN_DLE_COLLECT_ROUNDS = [
    ("hexagon", 3, 0, 460),
    ("holey", 3, 1, 2006),
    ("blob", 4, 2, 973),
]


@pytest.mark.parametrize("family,size,seed,rounds",
                         GOLDEN_DLE_COLLECT_ROUNDS)
def test_collect_golden_rounds_unchanged(family, size, seed, rounds):
    shape = make_shape(family, size, seed=seed)
    record = run_experiment("dle+collect", shape, family=family,
                            size=size, seed=seed)
    assert record.rounds == rounds


# ---------------------------------------------------------------------------
# Strict typing gate
# ---------------------------------------------------------------------------

#: Mirrors ``[tool.mypy] files`` in pyproject.toml.
STRICT_TARGETS = (
    "src/repro/api.py",
    "src/repro/session.py",
    "src/repro/state.py",
    "src/repro/telemetry",
    "src/repro/orchestrator/transport.py",
    "src/repro/lint",
)


def _strict_files():
    for target in STRICT_TARGETS:
        path = REPO_ROOT / target
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py")
                              if "__pycache__" not in p.parts)
        else:
            yield path


def test_strict_target_list_matches_pyproject():
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    for target in STRICT_TARGETS:
        assert f'"{target}"' in text


def test_strict_modules_fully_annotated():
    """Local approximation of ``mypy --strict``'s disallow_untyped_defs:
    every def in the strict-module list annotates its return type and
    every argument (``self``/``cls`` excepted)."""
    problems = []
    for path in _strict_files():
        tree = ast.parse(path.read_text(encoding="utf-8"),
                         filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            where = f"{path.relative_to(REPO_ROOT)}:{node.lineno}"
            if node.returns is None:
                problems.append(f"{where}: {node.name} lacks a return "
                                f"annotation")
            args = node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    problems.append(f"{where}: {node.name}({arg.arg}) "
                                    f"lacks an annotation")
            for arg in (args.vararg, args.kwarg):
                if arg is not None and arg.annotation is None:
                    problems.append(f"{where}: {node.name}(*{arg.arg}) "
                                    f"lacks an annotation")
    assert not problems, "\n".join(problems)


def test_mypy_strict_passes():
    """The real gate, when mypy is installed (CI installs it; the local
    image may not ship it — then the annotation test above still runs)."""
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file",
         str(REPO_ROOT / "pyproject.toml")],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert result.returncode == 0, result.stdout + result.stderr
