"""Tests for the JSON serialisation round-trips."""

import json

import pytest

from repro.amoebot.system import ParticleSystem
from repro.analysis.experiments import run_scaling_experiment
from repro.core.dle import DLEAlgorithm, verify_unique_leader
from repro.amoebot.scheduler import Scheduler
from repro.grid.generators import annulus, hexagon, random_blob
from repro.grid.shape import Shape
from repro.io import (
    load_records,
    load_shape,
    load_system,
    records_from_dicts,
    records_to_dicts,
    save_records,
    save_shape,
    save_system,
    shape_from_dict,
    shape_to_dict,
    system_from_dict,
    system_to_dict,
)


class TestShapeRoundTrip:
    @pytest.mark.parametrize("shape", [hexagon(2), annulus(4, 1),
                                       random_blob(40, seed=3),
                                       Shape([(0, 0)])],
                             ids=["hexagon", "annulus", "blob", "single"])
    def test_dict_round_trip(self, shape):
        assert shape_from_dict(shape_to_dict(shape)) == shape

    def test_file_round_trip(self, tmp_path):
        shape = annulus(3, 1)
        path = tmp_path / "shape.json"
        save_shape(shape, path)
        assert load_shape(path) == shape
        # The file really is JSON.
        assert json.loads(path.read_text())["kind"] == "shape"

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            shape_from_dict({"kind": "particle-system", "points": []})


class TestSystemRoundTrip:
    def test_contracted_system(self):
        system = ParticleSystem.from_shape(hexagon(2), orientation_seed=4)
        clone = system_from_dict(system_to_dict(system))
        assert clone.occupied_points() == system.occupied_points()
        assert ([p.orientation for p in clone.particles()]
                == [p.orientation for p in system.particles()])

    def test_expanded_particles_survive(self):
        system = ParticleSystem.from_shape(Shape([(0, 0), (1, 0)]))
        system.expand(system.particle_at((1, 0)), (2, 0))
        clone = system_from_dict(system_to_dict(system))
        expanded = [p for p in clone.particles() if p.is_expanded]
        assert len(expanded) == 1
        assert set(expanded[0].occupied_points) == {(1, 0), (2, 0)}

    def test_memories_survive(self):
        shape = hexagon(2)
        system = ParticleSystem.from_shape(shape, orientation_seed=1)
        Scheduler(order="random", seed=1).run(DLEAlgorithm(), system)
        verify_unique_leader(system)
        clone = system_from_dict(system_to_dict(system))
        # The election outcome is preserved across the round trip.
        verify_unique_leader(clone)

    def test_file_round_trip(self, tmp_path):
        system = ParticleSystem.from_shape(annulus(3, 1), orientation_seed=2)
        path = tmp_path / "system.json"
        save_system(system, path)
        clone = load_system(path)
        assert clone.occupied_points() == system.occupied_points()

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            system_from_dict({"kind": "shape", "particles": []})


class TestRecordsRoundTrip:
    def test_dict_round_trip(self):
        records = run_scaling_experiment("dle", "hexagon", sizes=(1, 2), seed=0)
        clones = records_from_dicts(records_to_dicts(records))
        assert len(clones) == len(records)
        for original, clone in zip(records, clones):
            assert clone.algorithm == original.algorithm
            assert clone.rounds == original.rounds
            assert clone.metrics == original.metrics
            assert clone.succeeded == original.succeeded

    def test_file_round_trip(self, tmp_path):
        records = run_scaling_experiment("obd", "hexagon", sizes=(1, 2), seed=0)
        path = tmp_path / "records.json"
        save_records(records, path)
        clones = load_records(path)
        assert [c.rounds for c in clones] == [r.rounds for r in records]
